"""Periodic and eventually periodic sets of integers (paper Section 3.1).

Two canonical representations are provided:

* :class:`ZPeriodicSet` — a *purely periodic* subset of ℤ, i.e. a
  finite union of linear repeating points.  This is exactly the class
  of sets a single temporal column of a generalized database can
  denote before constraints are applied.

* :class:`EventuallyPeriodicSet` — a subset of ℕ that is arbitrary on
  a finite prefix and periodic beyond a threshold.  Chomicki and
  Imieliński prove (cited in Section 3.1) that the minimal models of
  their one-temporal-argument Datalog are exactly such sets, and the
  same holds for Templog; this class is therefore the common currency
  in which the data-expressiveness equivalence of the three formalisms
  is checked (experiment E3).

Both classes are immutable, hashable, canonical (equal sets compare
equal), and support the full boolean algebra exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lrp.congruence import divisors, lcm_all
from repro.lrp.point import Lrp


def _minimal_period(period, residues):
    """Reduce ``(period, residues)`` to the least period describing the
    same periodic set.  ``residues`` is a frozenset within [0, period).
    """
    for d in divisors(period):
        if all((r + d) % period in residues for r in residues):
            return d, frozenset(r % d for r in residues)
    return period, residues


@dataclass(frozen=True)
class ZPeriodicSet:
    """A purely periodic subset of ℤ: ``{t : t mod period ∈ residues}``.

    The representation is canonical — the period is minimal — so two
    instances are equal iff they denote the same set of integers.

    >>> evens = ZPeriodicSet(2, [0])
    >>> 4 in evens and 5 not in evens
    True
    >>> evens | ZPeriodicSet(2, [1]) == ZPeriodicSet.all()
    True
    """

    period: int
    residues: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("period must be positive")
        residues = frozenset(r % self.period for r in self.residues)
        period, residues = _minimal_period(self.period, residues)
        object.__setattr__(self, "period", period)
        object.__setattr__(self, "residues", residues)

    # -- constructors --------------------------------------------------

    @classmethod
    def empty(cls):
        """The empty subset of ℤ."""
        return cls(1, frozenset())

    @classmethod
    def all(cls):
        """All of ℤ."""
        return cls(1, frozenset([0]))

    @classmethod
    def from_lrp(cls, lrp):
        """The set denoted by a single linear repeating point."""
        return cls(lrp.period, frozenset([lrp.offset]))

    @classmethod
    def from_lrps(cls, lrps):
        """The union of the sets denoted by an iterable of lrps."""
        result = cls.empty()
        for lrp in lrps:
            result = result | cls.from_lrp(lrp)
        return result

    def to_lrps(self):
        """A list of disjoint lrps whose union denotes this set.

        The decomposition uses the canonical (minimal) period, so it is
        as coarse as a residue-class decomposition can be.

        >>> ZPeriodicSet(4, [1, 3]).to_lrps()
        [Lrp(period=2, offset=1)]
        """
        return [Lrp(self.period, r) for r in sorted(self.residues)]

    # -- set predicates ------------------------------------------------

    def __contains__(self, t):
        return t % self.period in self.residues

    def is_empty(self):
        """True when the set contains no integer."""
        return not self.residues

    def is_all(self):
        """True when the set is all of ℤ."""
        return self.period == 1 and 0 in self.residues

    def is_subset(self, other):
        """True when this set is contained in ``other``."""
        return (self - other).is_empty()

    def density(self):
        """The natural density of the set, a fraction in [0, 1]."""
        return len(self.residues) / self.period

    # -- boolean algebra -----------------------------------------------

    def _aligned(self, other):
        period = lcm_all([self.period, other.period])
        mine = frozenset(
            r + k * self.period for r in self.residues for k in range(period // self.period)
        )
        theirs = frozenset(
            r + k * other.period for r in other.residues for k in range(period // other.period)
        )
        return period, mine, theirs

    def __or__(self, other):
        period, mine, theirs = self._aligned(other)
        return ZPeriodicSet(period, mine | theirs)

    def __and__(self, other):
        period, mine, theirs = self._aligned(other)
        return ZPeriodicSet(period, mine & theirs)

    def __sub__(self, other):
        period, mine, theirs = self._aligned(other)
        return ZPeriodicSet(period, mine - theirs)

    def __xor__(self, other):
        period, mine, theirs = self._aligned(other)
        return ZPeriodicSet(period, mine ^ theirs)

    def __invert__(self):
        return ZPeriodicSet(self.period, frozenset(range(self.period)) - self.residues)

    def shift(self, c):
        """The set ``{t + c : t ∈ self}``."""
        return ZPeriodicSet(self.period, frozenset((r + c) % self.period for r in self.residues))

    # -- conversions -------------------------------------------------------

    def restrict_to_naturals(self, start=0):
        """The ℕ-restriction ``{t ∈ self : t >= start}`` as an
        :class:`EventuallyPeriodicSet`."""
        if start < 0:
            raise ValueError("start must be a natural number")
        return EventuallyPeriodicSet(
            threshold=start, period=self.period, residues=self.residues
        )

    # -- enumeration -----------------------------------------------------

    def enumerate(self, low, high):
        """The sorted list of members in the window ``[low, high)``."""
        return [t for t in range(low, high) if t in self]

    def __str__(self):
        if self.is_empty():
            return "{}"
        return " | ".join(str(lrp) for lrp in self.to_lrps())


@dataclass(frozen=True)
class EventuallyPeriodicSet:
    """A subset of ℕ, arbitrary below ``threshold`` and periodic above.

    ``t ∈ S`` iff ``t ∈ prefix`` when ``t < threshold``, and iff
    ``t mod period ∈ residues`` when ``t >= threshold``.  The
    representation is canonical: the threshold is minimal and the
    period minimal for the tail, so equal sets compare equal.

    >>> s = EventuallyPeriodicSet.from_finite([0, 5]) | \\
    ...     EventuallyPeriodicSet(threshold=10, period=5, residues=[0])
    >>> sorted(s.window(0, 22))
    [0, 5, 10, 15, 20]
    """

    threshold: int = 0
    period: int = 1
    residues: frozenset = field(default_factory=frozenset)
    prefix: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.period <= 0:
            raise ValueError("period must be positive")
        residues = frozenset(r % self.period for r in self.residues)
        prefix = frozenset(t for t in self.prefix if 0 <= t < self.threshold)
        threshold = self.threshold
        period, residues = _minimal_period(self.period, residues)
        # Pull the threshold back as long as the periodic rule already
        # explains the last prefix position.
        while threshold > 0:
            t = threshold - 1
            periodic_says = t % period in residues
            prefix_says = t in prefix
            if periodic_says != prefix_says:
                break
            threshold = t
            prefix = prefix - {t}
        if not residues:
            period = 1
        object.__setattr__(self, "threshold", threshold)
        object.__setattr__(self, "period", period)
        object.__setattr__(self, "residues", residues)
        object.__setattr__(self, "prefix", prefix)

    # -- constructors --------------------------------------------------

    @classmethod
    def empty(cls):
        """The empty subset of ℕ."""
        return cls()

    @classmethod
    def all(cls):
        """All of ℕ."""
        return cls(period=1, residues=[0])

    @classmethod
    def from_finite(cls, values):
        """The finite set of the given natural numbers."""
        values = frozenset(values)
        if any(v < 0 for v in values):
            raise ValueError("EventuallyPeriodicSet lives in the naturals")
        threshold = max(values) + 1 if values else 0
        return cls(threshold=threshold, prefix=values)

    @classmethod
    def from_lrp(cls, lrp, start=0):
        """The restriction of an lrp to ``{t ∈ ℕ : t >= start}``."""
        return cls(threshold=start, period=lrp.period, residues=[lrp.offset])

    # -- set predicates ------------------------------------------------

    def __contains__(self, t):
        if t < 0:
            return False
        if t < self.threshold:
            return t in self.prefix
        return t % self.period in self.residues

    def is_empty(self):
        """True when the set contains no natural number."""
        return not self.prefix and not self.residues

    def is_finite(self):
        """True when the set has finitely many members."""
        return not self.residues

    def is_all(self):
        """True when the set is all of ℕ."""
        return self.threshold == 0 and self.period == 1 and 0 in self.residues

    def is_subset(self, other):
        """True when this set is contained in ``other``."""
        return (self - other).is_empty()

    def min_element(self):
        """The least member, or None when the set is empty."""
        if self.prefix:
            return min(self.prefix)
        if not self.residues:
            return None
        candidates = [
            self.threshold + (r - self.threshold) % self.period for r in self.residues
        ]
        return min(candidates)

    def max_element(self):
        """The greatest member of a finite set, or None when empty.

        Raises ValueError on an infinite set.
        """
        if self.residues:
            raise ValueError("max_element of an infinite set")
        if not self.prefix:
            return None
        return max(self.prefix)

    # -- boolean algebra -----------------------------------------------

    def _aligned(self, other):
        threshold = max(self.threshold, other.threshold)
        period = lcm_all([self.period, other.period])

        def widen(s):
            prefix = frozenset(t for t in range(threshold) if t in s)
            residues = frozenset(
                r
                for r in range(period)
                if r % s.period in s.residues
            )
            return prefix, residues

        mine_prefix, mine_res = widen(self)
        their_prefix, their_res = widen(other)
        return threshold, period, (mine_prefix, mine_res), (their_prefix, their_res)

    def _combine(self, other, prefix_op, residue_op):
        threshold, period, mine, theirs = self._aligned(other)
        return EventuallyPeriodicSet(
            threshold=threshold,
            period=period,
            residues=residue_op(mine[1], theirs[1]),
            prefix=prefix_op(mine[0], theirs[0]),
        )

    def __or__(self, other):
        return self._combine(other, frozenset.union, frozenset.union)

    def __and__(self, other):
        return self._combine(other, frozenset.intersection, frozenset.intersection)

    def __sub__(self, other):
        return self._combine(other, frozenset.difference, frozenset.difference)

    def __xor__(self, other):
        return self._combine(other, frozenset.symmetric_difference, frozenset.symmetric_difference)

    def __invert__(self):
        return EventuallyPeriodicSet(
            threshold=self.threshold,
            period=self.period,
            residues=frozenset(range(self.period)) - self.residues,
            prefix=frozenset(range(self.threshold)) - self.prefix,
        )

    # -- temporal transformations ---------------------------------------

    def shift(self, k):
        """The set ``{t + k : t ∈ self}`` for ``k >= 0``.

        This is the semantics of Templog's ``○^k`` applied to a clause
        head, and of ``t + k`` head terms in Datalog1S.
        """
        if k < 0:
            raise ValueError("shift amount must be non-negative; use shift_back")
        return EventuallyPeriodicSet(
            threshold=self.threshold + k,
            period=self.period,
            residues=frozenset((r + k) % self.period for r in self.residues),
            prefix=frozenset(t + k for t in self.prefix),
        )

    def shift_back(self, k):
        """The set ``{t : t + k ∈ self} ⊆ ℕ`` for ``k >= 0``."""
        if k < 0:
            raise ValueError("shift amount must be non-negative; use shift")
        # For t >= threshold - k the original periodic rule applies to
        # t + k, so the tail residues simply shift; below that point the
        # original prefix decides and is re-read explicitly.
        new_threshold = max(self.threshold - k, 0)
        residues = frozenset((r - k) % self.period for r in self.residues)
        explicit = frozenset(t for t in range(new_threshold) if (t + k) in self)
        return EventuallyPeriodicSet(
            threshold=new_threshold,
            period=self.period,
            residues=residues,
            prefix=explicit,
        )

    def up_closure(self):
        """``{t : ∃ s ∈ self, s >= t}`` — the semantics of Templog's ◇.

        For an infinite set this is all of ℕ; for a finite set it is
        the initial segment ``[0, max]``.
        """
        if self.residues:
            return EventuallyPeriodicSet.all()
        if not self.prefix:
            return EventuallyPeriodicSet.empty()
        return EventuallyPeriodicSet.from_finite(range(max(self.prefix) + 1))

    def down_closure(self):
        """``{t : ∃ s ∈ self, s <= t}`` — all naturals from the minimum on."""
        least = self.min_element()
        if least is None:
            return EventuallyPeriodicSet.empty()
        return EventuallyPeriodicSet(threshold=least, period=1, residues=[0])

    def plus_closure(self, k):
        """The closure of the set under adding ``k`` ≥ 1:
        ``{t + j*k : t ∈ self, j >= 0}``.

        This accelerates the recursive clause ``p(t+k) ← p(t)`` in one
        exact step: a natural ``t`` belongs to the closure iff some
        member ``s <= t`` of the set is congruent to ``t`` modulo ``k``.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if self.is_empty():
            return self
        period = lcm_all([self.period, k])
        # Least member of the set in each residue class modulo k.
        least_in_class = {}
        horizon = self.threshold + period
        for t in range(horizon):
            if t in self and (t % k) not in least_in_class:
                least_in_class[t % k] = t
        for r in range(period):
            if r % self.period in self.residues:
                rho = r % k
                candidate = self.threshold + (r - self.threshold) % period
                least_in_class[rho] = min(least_in_class.get(rho, candidate), candidate)
        result = EventuallyPeriodicSet.empty()
        for rho, least in least_in_class.items():
            cls_from_least = EventuallyPeriodicSet(
                threshold=least, period=k, residues=[rho % k]
            )
            result = result | cls_from_least
        return result

    # -- conversions -------------------------------------------------------

    def tail_as_zset(self):
        """The purely periodic law of the tail (ignoring threshold and
        prefix) as a :class:`ZPeriodicSet` over all of ℤ."""
        return ZPeriodicSet(self.period, self.residues)

    def eventually_agrees_with(self, zset):
        """True when this set coincides with the ℤ-periodic ``zset``
        from some point on."""
        return self.tail_as_zset() == zset

    # -- enumeration ------------------------------------------------------

    def window(self, low, high):
        """The sorted list of members in the window ``[low, high)``."""
        return [t for t in range(max(low, 0), high) if t in self]

    def __str__(self):
        if self.is_empty():
            return "{}"
        parts = []
        if self.prefix:
            parts.append("{%s}" % ", ".join(str(t) for t in sorted(self.prefix)))
        for r in sorted(self.residues):
            start = self.threshold + (r - self.threshold) % self.period
            if self.period == 1:
                parts.append("[%d..∞)" % start)
            else:
                parts.append("%dn+%d (n>=%d)" % (self.period, r, (start - r) // self.period))
        return " ∪ ".join(parts)
