"""Elementary number theory used by linear repeating points.

Everything here is exact integer arithmetic; no floating point is ever
involved.  These functions are the substrate for intersecting linear
repeating points (Chinese Remainder Theorem) and for aligning the
periods of generalized tuples.
"""

from __future__ import annotations

import math


def egcd(a, b):
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``.

    ``g`` is always non-negative.

    >>> egcd(240, 46)
    (2, -9, 47)
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_x, x = x, old_x - quotient * x
        old_y, y = y, old_y - quotient * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


def lcm(a, b):
    """Least common multiple of two positive integers."""
    return a // math.gcd(a, b) * b


def lcm_all(values):
    """Least common multiple of an iterable of positive integers.

    Returns 1 for an empty iterable.
    """
    result = 1
    for value in values:
        result = lcm(result, value)
    return result


def modular_inverse(a, m):
    """Return ``x`` with ``a*x ≡ 1 (mod m)``, or None if not invertible.

    >>> modular_inverse(3, 7)
    5
    """
    g, x, _ = egcd(a, m)
    if g != 1:
        return None
    return x % m


def solve_congruence(a, b, m):
    """Solve ``a*x ≡ b (mod m)`` for x.

    Returns ``(x0, step)`` describing the full solution set
    ``{x0 + k*step : k ∈ ℤ}`` with ``0 <= x0 < step``, or None when the
    congruence has no solution.

    >>> solve_congruence(4, 2, 6)
    (2, 3)
    """
    g = math.gcd(a, m)
    if b % g != 0:
        return None
    step = m // g
    inverse = modular_inverse((a // g) % step, step)
    if inverse is None:  # pragma: no cover - impossible after division by g
        return None
    x0 = (b // g) * inverse % step
    return x0, step


def crt(r1, m1, r2, m2):
    """Chinese Remainder Theorem for two congruences.

    Solve ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)``.  Returns
    ``(r, lcm(m1, m2))`` with ``0 <= r < lcm(m1, m2)``, or None when the
    congruences are incompatible.

    >>> crt(3, 5, 5, 7)
    (33, 35)
    >>> crt(0, 2, 1, 4) is None
    True
    """
    g, p, _ = egcd(m1, m2)
    if (r2 - r1) % g != 0:
        return None
    modulus = m1 // g * m2
    # x = r1 + m1 * t where t ≡ (r2 - r1)/g * p (mod m2/g)
    t = (r2 - r1) // g * p % (m2 // g)
    return (r1 + m1 * t) % modulus, modulus


def crt_all(pairs):
    """CRT for any number of ``(residue, modulus)`` pairs.

    Returns ``(residue, modulus)`` for the combined congruence or None
    when the system is inconsistent.  The empty system yields
    ``(0, 1)`` (all integers).
    """
    residue, modulus = 0, 1
    for r, m in pairs:
        combined = crt(residue, modulus, r, m)
        if combined is None:
            return None
        residue, modulus = combined
    return residue, modulus


def divisors(n):
    """All positive divisors of ``n`` in increasing order.

    >>> divisors(12)
    [1, 2, 3, 4, 6, 12]
    """
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]
