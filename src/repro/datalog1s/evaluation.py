"""Closed-form minimal models for Datalog1S (paper Sections 2.2, 3.1).

The [CI88] theorem cited by the paper states that the minimal model of
a Datalog1S program is *eventually periodic* in every predicate.  The
evaluator here computes that closed form:

* **Forward programs** (every rule's head offset >= all its body
  offsets — every program in the paper is of this shape) are evaluated
  with a *frontier automaton*: the slice of atoms true at time ``t``
  depends only on the previous ``D`` slices (``D`` = max head offset),
  so the sequence of ``D``-windows is eventually periodic and the
  repetition is detected **exactly**; the resulting
  :class:`~repro.lrp.periodic_set.EventuallyPeriodicSet` per predicate
  and data vector is the true minimal model.

* **Non-forward programs** (heads earlier than bodies, as produced by
  Templog's ◇) are evaluated by window fixpoints with horizon
  doubling: ``F(H)`` under-approximates the minimal model and
  converges pointwise; the evaluator doubles the horizon until the
  prefix stabilizes and a periodic tail fits twice in a row.  This is
  exact on every program whose model is eventually periodic with
  parameters within the horizon cap, and raises
  :class:`~repro.util.errors.EvaluationError` otherwise.

Clause bodies are matched through
:class:`~repro.plan.ground.GroundClausePlan`: data substitutions are
enumerated by unifying against the facts actually present in the
relevant slices, instead of instantiating every clause over
``domain^k`` upfront.  Slices are stored as ``{predicate: {data
vectors}}`` dicts so the matcher's candidate lookups are hash hits.
"""

from __future__ import annotations

import time

from repro.lrp.congruence import lcm_all
from repro.lrp.periodic_set import EventuallyPeriodicSet
from repro.plan.ground import GroundClausePlan, ground_data
from repro.util import hooks
from repro.util.errors import BudgetExceededError, EvaluationError


class Model1S:
    """A closed-form model: one eventually periodic set per
    ``(predicate, data vector)`` pair."""

    def __init__(self, sets):
        self._sets = {
            key: value
            for key, value in sets.items()
            if not value.is_empty()
        }

    def set_of(self, predicate, data=()):
        """The times at which ``predicate(…; data)`` holds."""
        return self._sets.get(
            (predicate, tuple(data)), EventuallyPeriodicSet.empty()
        )

    def holds(self, predicate, t, data=()):
        """Truth of one ground atom."""
        return t in self.set_of(predicate, data)

    def keys(self):
        """All non-empty ``(predicate, data)`` pairs."""
        return sorted(self._sets, key=repr)

    def predicates(self):
        """The predicates with non-empty extensions."""
        return sorted({predicate for predicate, _ in self._sets})

    def restricted_to(self, predicates):
        """The sub-model of the given predicates."""
        return Model1S(
            {
                key: value
                for key, value in self._sets.items()
                if key[0] in predicates
            }
        )

    def __eq__(self, other):
        if not isinstance(other, Model1S):
            return NotImplemented
        return self._sets == other._sets

    def __str__(self):
        lines = []
        for (predicate, data) in self.keys():
            suffix = "(%s)" % ", ".join(map(repr, data)) if data else ""
            lines.append("%s%s: %s" % (predicate, suffix, self._sets[(predicate, data)]))
        return "\n".join(lines)


class _CompiledRules:
    """Clauses compiled to slice-driven ground plans."""

    def __init__(self, program, edb):
        self.edb = {key: value for key, value in (edb or {}).items()}
        domain = set(program.data_constants())
        for (_, data), _value in self.edb.items():
            domain.update(data)
        self.domain = sorted(domain, key=repr)

        self.facts = []        # ground (pred, data, time)
        self.rules = []        # (head_pred, head_terms, head_offset, body, plan)
        self.fixed_rules = []  # (head_pred, head_terms, head_time, body, plan)

        for head_offset, body, head in program.normalized_clauses():
            if not body:
                # A recurring fact; head data variables (if any) range
                # over the active domain, as under the old grounding.
                plan = GroundClausePlan(head.data_args, [], self.domain)
                for theta in plan.substitutions(_no_facts):
                    self.facts.append(
                        (head.predicate, ground_data(head.data_args, theta), head_offset)
                    )
            else:
                plan = GroundClausePlan(head.data_args, body, self.domain)
                self.rules.append(
                    (head.predicate, head.data_args, head_offset, tuple(body), plan)
                )

        for head_time, body, head in program.ground_rules():
            plan = GroundClausePlan(head.data_args, body, self.domain)
            self.fixed_rules.append(
                (head.predicate, head.data_args, head_time, tuple(body), plan)
            )

    def max_fact_time(self):
        """The last time at which non-recurring content is injected:
        facts and ground-rule head/body times."""
        times = [t for (_, __, t) in self.facts]
        for (_, __, head_time, body, ___) in self.fixed_rules:
            times.append(head_time)
            times.extend(time for (_, time, __, ___) in body)
        return max(times, default=-1)

    def max_delay(self):
        return max(
            (head_offset for (_, __, head_offset, ___, ____) in self.rules),
            default=1,
        )


def _no_facts(_predicate, _time_key):
    return None


def _slice_count(current):
    return sum(len(vectors) for vectors in current.values())


def minimal_model(program, edb=None, max_horizon=200_000, budget=None):
    """The closed-form minimal model of a Datalog1S program.

    ``edb`` optionally maps ``(predicate, data_tuple)`` to
    :class:`EventuallyPeriodicSet` extensions for extensional
    predicates.  Programs with stratified negation are evaluated
    stratum by stratum, each lower stratum's closed-form sets serving
    as fixed extensions for the ``not`` atoms above (Section 3.2's
    extension of the deductive languages).  Raises
    :class:`EvaluationError` if closure cannot be detected within
    ``max_horizon`` time points.

    ``budget`` is an optional
    :class:`~repro.runtime.budget.EvaluationBudget`, charged one round
    per time slice (forward programs) or fixpoint pass (horizon
    doubling); when a limit trips,
    :class:`~repro.util.errors.BudgetExceededError` carries a
    prefix-only partial :class:`Model1S` covering the slices computed
    so far plus any completed lower strata.
    """
    meter = budget.start() if budget is not None else None
    strata = program.strata()
    accumulated = dict(edb or {})
    observing = bool(hooks.SINKS)
    started = time.perf_counter() if observing else 0.0
    if observing:
        hooks.emit(
            "engine.run",
            {
                "phase": "begin",
                "strategy": "datalog1s",
                "safety": "n/a",
                "strata": len(strata),
                "resumed_from_round": None,
            },
        )
    try:
        if len(strata) == 1:
            model = _stratum_model(strata[0], accumulated, max_horizon, meter)
        else:
            for index, stratum in enumerate(strata):
                partial = _stratum_model(
                    stratum, accumulated, max_horizon, meter,
                    stratum_index=index,
                )
                for key in partial.keys():
                    accumulated[key] = partial.set_of(*key)
            model = Model1S(accumulated)
    except BudgetExceededError as error:
        partial = dict(accumulated)
        if error.partial_model is not None:
            for key in error.partial_model.keys():
                partial[key] = error.partial_model.set_of(*key)
        error.partial_model = Model1S(partial)
        if observing:
            hooks.emit(
                "engine.run",
                {
                    "phase": "end",
                    "outcome": "budget-exceeded",
                    "duration_s": time.perf_counter() - started,
                },
            )
        raise
    if observing:
        hooks.emit(
            "engine.run",
            {
                "phase": "end",
                "outcome": "ok",
                "duration_s": time.perf_counter() - started,
            },
        )
    return model


def _stratum_model(program, edb, max_horizon, meter=None, stratum_index=0):
    ground = _CompiledRules(program, edb)
    observing = bool(hooks.SINKS)
    started = time.perf_counter() if observing else 0.0
    if observing:
        hooks.emit(
            "engine.stratum",
            {
                "phase": "begin",
                "stratum": stratum_index,
                "forward": program.is_forward(),
            },
        )
    try:
        if program.is_forward():
            return _forward_model(ground, max_horizon, meter, stratum_index)
        return _doubling_model(ground, max_horizon, meter, stratum_index)
    finally:
        if observing:
            hooks.emit(
                "engine.stratum",
                {
                    "phase": "end",
                    "stratum": stratum_index,
                    "duration_s": time.perf_counter() - started,
                },
            )


# -- exact frontier automaton for forward programs ------------------------


def _forward_model(ground, max_horizon, meter=None, stratum_index=0):
    delay = max(ground.max_delay(), 1)
    facts_by_time = {}
    for (pred, data, t) in ground.facts:
        facts_by_time.setdefault(t, []).append((pred, data))
    last_fact = ground.max_fact_time()
    edb_period = lcm_all(
        [value.period for value in ground.edb.values()] or [1]
    )
    edb_threshold = max(
        (value.threshold for value in ground.edb.values()), default=0
    )
    stable_from = max(last_fact + 1, edb_threshold, delay)

    slices = []
    seen_states = {}
    cycle = None
    try:
        for t in range(max_horizon):
            if meter is not None:
                meter.charge_round()
            slice_started = time.perf_counter() if hooks.SINKS else 0.0
            slices.append(_compute_slice(ground, slices, facts_by_time, t))
            count = _slice_count(slices[-1])
            if hooks.SINKS:
                hooks.emit(
                    "engine.round",
                    {
                        "phase": "end",
                        "round": t + 1,
                        "stratum": stratum_index,
                        "time_point": t,
                        "derived": count,
                        "accepted": count,
                        "duration_s": time.perf_counter() - slice_started,
                    },
                )
            if meter is not None and count:
                meter.charge_accepted(count)
            if t >= stable_from + delay - 1:
                window = tuple(
                    _freeze_slice(slices[t - k]) for k in range(delay)
                )
                state = (window, t % edb_period)
                if state in seen_states:
                    cycle = (seen_states[state], t)
                    break
                seen_states[state] = t
    except BudgetExceededError as error:
        error.partial_model = _prefix_model(slices)
        raise
    if cycle is None:
        raise EvaluationError(
            "no frontier cycle within %d time points" % max_horizon
        )
    t1, t2 = cycle
    return _model_from_slices(slices, t1, t2 - t1)


def _freeze_slice(current):
    return frozenset(
        (pred, data) for pred, vectors in current.items() for data in vectors
    )


def _slice_keys(slices):
    keys = set()
    for current in slices:
        for pred, vectors in current.items():
            keys.update((pred, data) for data in vectors)
    return keys


def _prefix_model(slices):
    """A prefix-only partial model from the slices computed so far —
    sound (bottom-up computation only adds atoms) but silent beyond
    the last computed time point."""
    horizon = len(slices)
    sets = {}
    for key in _slice_keys(slices):
        pred, data = key
        times = {
            t for t in range(horizon) if data in slices[t].get(pred, ())
        }
        sets[key] = EventuallyPeriodicSet(
            threshold=max(horizon, 1), period=1, residues=frozenset(), prefix=times
        )
    return Model1S(sets)


def _compute_slice(ground, slices, facts_by_time, t):
    current = {}

    def add(pred, data):
        current.setdefault(pred, set()).add(data)

    for (pred, data) in facts_by_time.get(t, ()):
        add(pred, data)
    for ((pred, data), extension) in ground.edb.items():
        if t in extension:
            add(pred, data)

    def facts_at_absolute(pred, time):
        if time < 0:
            return ()
        if time == t:
            return current.get(pred, ())
        return slices[time].get(pred, ())

    changed = True
    while changed:
        changed = False
        for (head_pred, head_terms, head_offset, _body, plan) in ground.rules:
            if t < head_offset:
                continue  # the clause variable ranges over the naturals
            base = t - head_offset

            def facts_at(pred, offset, _base=base):
                return facts_at_absolute(pred, _base + offset)

            # Materialize before adding: the matcher iterates the live
            # slice sets, which derived heads are about to grow.
            for theta in list(plan.substitutions(facts_at)):
                head_data = ground_data(head_terms, theta)
                if head_data not in current.get(head_pred, ()):
                    add(head_pred, head_data)
                    changed = True
        for (head_pred, head_terms, head_time, _body, plan) in ground.fixed_rules:
            if head_time != t:
                continue
            for theta in list(plan.substitutions(facts_at_absolute)):
                head_data = ground_data(head_terms, theta)
                if head_data not in current.get(head_pred, ()):
                    add(head_pred, head_data)
                    changed = True
    return current


def _model_from_slices(slices, threshold, period):
    sets = {}
    for key in _slice_keys(slices):
        pred, data = key
        prefix = {
            t for t in range(threshold) if data in slices[t].get(pred, ())
        }
        residues = {
            t % period
            for t in range(threshold, threshold + period)
            if data in slices[t].get(pred, ())
        }
        sets[key] = EventuallyPeriodicSet(
            threshold=threshold,
            period=period,
            residues=residues,
            prefix=prefix,
        )
    return Model1S(sets)


# -- horizon doubling for non-forward programs -----------------------------


def _window_fixpoint(ground, horizon, meter=None, stratum_index=0):
    facts = {}    # (pred, data) -> set of times
    by_time = {}  # (pred, time) -> set of data vectors

    def add(pred, data, time):
        facts.setdefault((pred, data), set()).add(time)
        by_time.setdefault((pred, time), set()).add(data)

    for (pred, data, t) in ground.facts:
        if 0 <= t < horizon:
            add(pred, data, t)
    for (pred, data), extension in ground.edb.items():
        for t in extension.window(0, horizon):
            add(pred, data, t)

    def facts_at_absolute(pred, time):
        if time < 0 or time >= horizon:
            return None  # out of window: the body cannot hold
        return by_time.get((pred, time), ())

    changed = True
    pass_no = 0
    while changed:
        if meter is not None:
            meter.charge_round()
        pass_no += 1
        observing = bool(hooks.SINKS)
        if observing:
            pass_started = time.perf_counter()
            before = sum(len(times) for times in facts.values())
        changed = False
        for (head_pred, head_terms, head_offset, _body, plan) in ground.rules:
            for base in range(0, horizon):
                head_time = base + head_offset
                if head_time >= horizon:
                    continue

                def facts_at(pred, offset, _base=base):
                    return facts_at_absolute(pred, _base + offset)

                for theta in list(plan.substitutions(facts_at)):
                    head_data = ground_data(head_terms, theta)
                    if head_time not in facts.get((head_pred, head_data), ()):
                        add(head_pred, head_data, head_time)
                        changed = True
        for (head_pred, head_terms, head_time, _body, plan) in ground.fixed_rules:
            if head_time >= horizon:
                continue
            for theta in list(plan.substitutions(facts_at_absolute)):
                head_data = ground_data(head_terms, theta)
                if head_time not in facts.get((head_pred, head_data), ()):
                    add(head_pred, head_data, head_time)
                    changed = True
        if observing:
            after = sum(len(times) for times in facts.values())
            hooks.emit(
                "engine.round",
                {
                    "phase": "end",
                    "round": pass_no,
                    "stratum": stratum_index,
                    "horizon": horizon,
                    "derived": after - before,
                    "accepted": after - before,
                    "duration_s": time.perf_counter() - pass_started,
                },
            )
    return facts


def _fit_eventually_periodic(times, horizon, guard):
    """Fit (threshold, period) to a set of times computed on
    ``[0, horizon)``, ignoring the last ``guard`` points (window
    truncation).  Returns an EventuallyPeriodicSet or None."""
    usable = horizon - guard
    if usable <= 4:
        return None
    threshold = usable // 2
    for period in range(1, (usable - threshold) // 2 + 1):
        ok = all(
            ((t in times) == ((t + period) in times))
            for t in range(threshold, usable - period)
        )
        if ok:
            return EventuallyPeriodicSet(
                threshold=threshold,
                period=period,
                residues={
                    t % period
                    for t in range(threshold, threshold + period)
                    if t in times
                },
                prefix={t for t in range(threshold) if t in times},
            )
    return None


def _doubling_model(ground, max_horizon, meter=None, stratum_index=0):
    delay = max(ground.max_delay(), 1)
    backward_reach = max(
        (
            max(offset for (_, offset, __, ___) in body) - head_offset
            for (_, __, head_offset, body, ____) in ground.rules
            if body
        ),
        default=0,
    )
    base_guard = max(delay, backward_reach, 1) * 4
    horizon = max(64, 4 * base_guard, 2 * (ground.max_fact_time() + 2))
    previous_fit = None
    while horizon <= max_horizon:
        # Backward chains (aux(t) <- aux(t+1)) can propagate the window
        # truncation arbitrarily far down, but never further than one
        # period of their support; a guard proportional to the horizon
        # eventually dominates any fixed period.
        guard = max(base_guard, horizon // 4)
        try:
            facts = _window_fixpoint(ground, horizon, meter, stratum_index)
        except BudgetExceededError as error:
            error.partial_model = Model1S(previous_fit or {})
            raise
        fit = {}
        failed = False
        for key, times in facts.items():
            eps = _fit_eventually_periodic(times, horizon, guard)
            if eps is None:
                failed = True
                break
            fit[key] = eps
        if not failed and previous_fit is not None and fit == previous_fit:
            return Model1S(fit)
        previous_fit = None if failed else fit
        horizon *= 2
    raise EvaluationError(
        "horizon doubling did not converge within %d time points"
        % max_horizon
    )
