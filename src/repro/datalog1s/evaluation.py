"""Closed-form minimal models for Datalog1S (paper Sections 2.2, 3.1).

The [CI88] theorem cited by the paper states that the minimal model of
a Datalog1S program is *eventually periodic* in every predicate.  The
evaluator here computes that closed form:

* **Forward programs** (every rule's head offset >= all its body
  offsets — every program in the paper is of this shape) are evaluated
  with a *frontier automaton*: the slice of atoms true at time ``t``
  depends only on the previous ``D`` slices (``D`` = max head offset),
  so the sequence of ``D``-windows is eventually periodic and the
  repetition is detected **exactly**; the resulting
  :class:`~repro.lrp.periodic_set.EventuallyPeriodicSet` per predicate
  and data vector is the true minimal model.

* **Non-forward programs** (heads earlier than bodies, as produced by
  Templog's ◇) are evaluated by window fixpoints with horizon
  doubling: ``F(H)`` under-approximates the minimal model and
  converges pointwise; the evaluator doubles the horizon until the
  prefix stabilizes and a periodic tail fits twice in a row.  This is
  exact on every program whose model is eventually periodic with
  parameters within the horizon cap, and raises
  :class:`~repro.util.errors.EvaluationError` otherwise.
"""

from __future__ import annotations

import itertools

from repro.lrp.congruence import lcm_all
from repro.lrp.periodic_set import EventuallyPeriodicSet
from repro.util.errors import BudgetExceededError, EvaluationError


class Model1S:
    """A closed-form model: one eventually periodic set per
    ``(predicate, data vector)`` pair."""

    def __init__(self, sets):
        self._sets = {
            key: value
            for key, value in sets.items()
            if not value.is_empty()
        }

    def set_of(self, predicate, data=()):
        """The times at which ``predicate(…; data)`` holds."""
        return self._sets.get(
            (predicate, tuple(data)), EventuallyPeriodicSet.empty()
        )

    def holds(self, predicate, t, data=()):
        """Truth of one ground atom."""
        return t in self.set_of(predicate, data)

    def keys(self):
        """All non-empty ``(predicate, data)`` pairs."""
        return sorted(self._sets, key=repr)

    def predicates(self):
        """The predicates with non-empty extensions."""
        return sorted({predicate for predicate, _ in self._sets})

    def restricted_to(self, predicates):
        """The sub-model of the given predicates."""
        return Model1S(
            {
                key: value
                for key, value in self._sets.items()
                if key[0] in predicates
            }
        )

    def __eq__(self, other):
        if not isinstance(other, Model1S):
            return NotImplemented
        return self._sets == other._sets

    def __str__(self):
        lines = []
        for (predicate, data) in self.keys():
            suffix = "(%s)" % ", ".join(map(repr, data)) if data else ""
            lines.append("%s%s: %s" % (predicate, suffix, self._sets[(predicate, data)]))
        return "\n".join(lines)


class _GroundRules:
    """Clauses instantiated over the active data domain."""

    def __init__(self, program, edb):
        self.facts = []        # (pred, data, time)
        self.rules = []        # (head_pred, head_data, head_offset, body)
        self.fixed_rules = []  # (head_pred, head_data, head_time, body @ absolute times)
        self.edb = {key: value for key, value in (edb or {}).items()}
        domain = set(program.data_constants())
        for (_, data), _value in self.edb.items():
            domain.update(data)
        domain = sorted(domain, key=repr)

        for head_time, body, head in program.ground_rules():
            for theta in _data_assignments(head, body, domain):
                head_data = _ground_data(head.data_args, theta)
                ground_body = [
                    (pred, time, _ground_data(data, theta), negative)
                    for (pred, time, data, negative) in body
                ]
                self.fixed_rules.append(
                    (head.predicate, head_data, head_time, ground_body)
                )

        for head_offset, body, head in program.normalized_clauses():
            for theta in _data_assignments(head, body, domain):
                head_data = _ground_data(head.data_args, theta)
                if not body:
                    self.facts.append((head.predicate, head_data, head_offset))
                else:
                    ground_body = [
                        (pred, offset, _ground_data(data, theta), negative)
                        for (pred, offset, data, negative) in body
                    ]
                    self.rules.append(
                        (head.predicate, head_data, head_offset, ground_body)
                    )

        self.keys = set()
        self.keys.update((pred, data) for (pred, data, _) in self.facts)
        for (pred, data, _, body) in self.rules + self.fixed_rules:
            self.keys.add((pred, data))
            self.keys.update((p, d) for (p, _t, d, _neg) in body)
        self.keys.update(self.edb)

    def max_fact_time(self):
        """The last time at which non-recurring content is injected:
        facts and ground-rule head/body times."""
        times = [t for (_, __, t) in self.facts]
        for (_, __, head_time, body) in self.fixed_rules:
            times.append(head_time)
            times.extend(t for (_, t, __, ___) in body)
        return max(times, default=-1)

    def max_delay(self):
        return max((head_offset for (_, __, head_offset, ___) in self.rules), default=1)


def _data_assignments(head, body, domain):
    """All substitutions of the clause's data variables over the
    active domain (one empty substitution for ground clauses)."""
    variables = sorted(
        {
            term.name
            for atom_data in [head.data_args]
            + [data for (_, __, data, ___) in body]
            for term in atom_data
            if term.is_variable()
        }
    )
    if not variables:
        return [{}]
    return (
        dict(zip(variables, values))
        for values in itertools.product(domain, repeat=len(variables))
    )


def _ground_data(terms, theta):
    return tuple(
        theta[term.name] if term.is_variable() else term.value for term in terms
    )


def minimal_model(program, edb=None, max_horizon=200_000, budget=None):
    """The closed-form minimal model of a Datalog1S program.

    ``edb`` optionally maps ``(predicate, data_tuple)`` to
    :class:`EventuallyPeriodicSet` extensions for extensional
    predicates.  Programs with stratified negation are evaluated
    stratum by stratum, each lower stratum's closed-form sets serving
    as fixed extensions for the ``not`` atoms above (Section 3.2's
    extension of the deductive languages).  Raises
    :class:`EvaluationError` if closure cannot be detected within
    ``max_horizon`` time points.

    ``budget`` is an optional
    :class:`~repro.runtime.budget.EvaluationBudget`, charged one round
    per time slice (forward programs) or fixpoint pass (horizon
    doubling); when a limit trips,
    :class:`~repro.util.errors.BudgetExceededError` carries a
    prefix-only partial :class:`Model1S` covering the slices computed
    so far plus any completed lower strata.
    """
    meter = budget.start() if budget is not None else None
    strata = program.strata()
    accumulated = dict(edb or {})
    try:
        if len(strata) == 1:
            return _stratum_model(strata[0], accumulated, max_horizon, meter)
        for stratum in strata:
            model = _stratum_model(stratum, accumulated, max_horizon, meter)
            for key in model.keys():
                accumulated[key] = model.set_of(*key)
        return Model1S(accumulated)
    except BudgetExceededError as error:
        partial = dict(accumulated)
        if error.partial_model is not None:
            for key in error.partial_model.keys():
                partial[key] = error.partial_model.set_of(*key)
        error.partial_model = Model1S(partial)
        raise


def _stratum_model(program, edb, max_horizon, meter=None):
    ground = _GroundRules(program, edb)
    if program.is_forward():
        return _forward_model(ground, max_horizon, meter)
    return _doubling_model(ground, max_horizon, meter)


# -- exact frontier automaton for forward programs ------------------------


def _forward_model(ground, max_horizon, meter=None):
    delay = max(ground.max_delay(), 1)
    facts_by_time = {}
    for (pred, data, t) in ground.facts:
        facts_by_time.setdefault(t, set()).add((pred, data))
    last_fact = ground.max_fact_time()
    edb_period = lcm_all(
        [value.period for value in ground.edb.values()] or [1]
    )
    edb_threshold = max(
        (value.threshold for value in ground.edb.values()), default=0
    )
    stable_from = max(last_fact + 1, edb_threshold, delay)

    slices = []
    seen_states = {}
    cycle = None
    try:
        for t in range(max_horizon):
            if meter is not None:
                meter.charge_round()
            slices.append(_compute_slice(ground, slices, facts_by_time, t))
            if meter is not None and slices[-1]:
                meter.charge_accepted(len(slices[-1]))
            if t >= stable_from + delay - 1:
                window = tuple(
                    frozenset(slices[t - k]) for k in range(delay)
                )
                state = (window, t % edb_period)
                if state in seen_states:
                    cycle = (seen_states[state], t)
                    break
                seen_states[state] = t
    except BudgetExceededError as error:
        error.partial_model = _prefix_model(ground, slices)
        raise
    if cycle is None:
        raise EvaluationError(
            "no frontier cycle within %d time points" % max_horizon
        )
    t1, t2 = cycle
    return _model_from_slices(ground, slices, t1, t2 - t1)


def _prefix_model(ground, slices):
    """A prefix-only partial model from the slices computed so far —
    sound (bottom-up computation only adds atoms) but silent beyond
    the last computed time point."""
    horizon = len(slices)
    sets = {}
    for key in ground.keys:
        times = {t for t in range(horizon) if key in slices[t]}
        sets[key] = EventuallyPeriodicSet(
            threshold=max(horizon, 1), period=1, residues=frozenset(), prefix=times
        )
    return Model1S(sets)


def _compute_slice(ground, slices, facts_by_time, t):
    current = set(facts_by_time.get(t, ()))
    for (key, extension) in ground.edb.items():
        if t in extension:
            current.add(key)

    def body_holds(pred, data, body_time, negative):
        if body_time < 0:
            present = False
        elif body_time == t:
            present = (pred, data) in current
        else:
            present = (pred, data) in slices[body_time]
        return present != negative

    changed = True
    while changed:
        changed = False
        for (head_pred, head_data, head_offset, body) in ground.rules:
            if t < head_offset:
                continue  # the clause variable ranges over the naturals
            if (head_pred, head_data) in current:
                continue
            base = t - head_offset
            if all(
                body_holds(pred, data, base + offset, negative)
                for (pred, offset, data, negative) in body
            ):
                current.add((head_pred, head_data))
                changed = True
        for (head_pred, head_data, head_time, body) in ground.fixed_rules:
            if head_time != t or (head_pred, head_data) in current:
                continue
            if all(
                body_holds(pred, data, time, negative)
                for (pred, time, data, negative) in body
            ):
                current.add((head_pred, head_data))
                changed = True
    return current


def _model_from_slices(ground, slices, threshold, period):
    sets = {}
    for key in ground.keys:
        prefix = {t for t in range(threshold) if key in slices[t]}
        residues = {
            t % period
            for t in range(threshold, threshold + period)
            if key in slices[t]
        }
        sets[key] = EventuallyPeriodicSet(
            threshold=threshold,
            period=period,
            residues=residues,
            prefix=prefix,
        )
    return Model1S(sets)


# -- horizon doubling for non-forward programs -----------------------------


def _window_fixpoint(ground, horizon, meter=None):
    facts = {key: set() for key in ground.keys}
    for (pred, data, t) in ground.facts:
        if 0 <= t < horizon:
            facts[(pred, data)].add(t)
    for key, extension in ground.edb.items():
        facts[key].update(extension.window(0, horizon))
    changed = True
    while changed:
        if meter is not None:
            meter.charge_round()
        changed = False
        for (head_pred, head_data, head_offset, body) in ground.rules:
            head_key = (head_pred, head_data)
            for base in range(0, horizon):
                head_time = base + head_offset
                if head_time >= horizon or head_time in facts[head_key]:
                    continue
                if all(
                    base + offset < horizon
                    and ((base + offset) in facts[(pred, data)]) != negative
                    for (pred, offset, data, negative) in body
                ):
                    facts[head_key].add(head_time)
                    changed = True
        for (head_pred, head_data, head_time, body) in ground.fixed_rules:
            head_key = (head_pred, head_data)
            if head_time >= horizon or head_time in facts[head_key]:
                continue
            if all(
                time < horizon and (time in facts[(pred, data)]) != negative
                for (pred, time, data, negative) in body
            ):
                facts[head_key].add(head_time)
                changed = True
    return facts


def _fit_eventually_periodic(times, horizon, guard):
    """Fit (threshold, period) to a set of times computed on
    ``[0, horizon)``, ignoring the last ``guard`` points (window
    truncation).  Returns an EventuallyPeriodicSet or None."""
    usable = horizon - guard
    if usable <= 4:
        return None
    threshold = usable // 2
    for period in range(1, (usable - threshold) // 2 + 1):
        ok = all(
            ((t in times) == ((t + period) in times))
            for t in range(threshold, usable - period)
        )
        if ok:
            return EventuallyPeriodicSet(
                threshold=threshold,
                period=period,
                residues={
                    t % period
                    for t in range(threshold, threshold + period)
                    if t in times
                },
                prefix={t for t in range(threshold) if t in times},
            )
    return None


def _doubling_model(ground, max_horizon, meter=None):
    delay = max(ground.max_delay(), 1)
    backward_reach = max(
        (
            max(offset for (_, offset, __, ___) in body) - head_offset
            for (_, __, head_offset, body) in ground.rules
            if body
        ),
        default=0,
    )
    base_guard = max(delay, backward_reach, 1) * 4
    horizon = max(64, 4 * base_guard, 2 * (ground.max_fact_time() + 2))
    previous_fit = None
    while horizon <= max_horizon:
        # Backward chains (aux(t) <- aux(t+1)) can propagate the window
        # truncation arbitrarily far down, but never further than one
        # period of their support; a guard proportional to the horizon
        # eventually dominates any fixed period.
        guard = max(base_guard, horizon // 4)
        try:
            facts = _window_fixpoint(ground, horizon, meter)
        except BudgetExceededError as error:
            error.partial_model = Model1S(previous_fit or {})
            raise
        fit = {}
        failed = False
        for key, times in facts.items():
            eps = _fit_eventually_periodic(times, horizon, guard)
            if eps is None:
                failed = True
                break
            fit[key] = eps
        if not failed and previous_fit is not None and fit == previous_fit:
            return Model1S(fit)
        previous_fit = None if failed else fit
        horizon *= 2
    raise EvaluationError(
        "horizon doubling did not converge within %d time points"
        % max_horizon
    )
