"""Round-trip conversions between the three formalisms (Section 3.1).

The paper's data-expressiveness claim is that one-temporal-argument
generalized relations with lrps, Datalog1S, and Templog all denote
exactly the (eventually) periodic sets.  These converters make the
equivalence executable:

* :func:`relation_to_datalog1s` compiles a temporal-arity-1
  generalized relation (restricted to ℕ) into a Datalog1S program
  whose minimal model is the same set of time points — the standard
  construction with one auxiliary predicate per residue class, so that
  the recursive clause never contaminates the finite prefix;
* :func:`datalog1s_model_to_relation` converts a closed-form model
  back into a generalized relation.

Experiment E3 checks the round trips bit for bit.
"""

from __future__ import annotations

from repro.constraints.system import ConstraintSystem
from repro.core.ast import Clause, DataTerm, PredicateAtom, Program, TemporalTerm
from repro.datalog1s.ast import Datalog1SProgram
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.periodic_set import EventuallyPeriodicSet
from repro.lrp.point import Lrp
from repro.util.errors import SchemaError


def eventually_periodic_to_clauses(predicate, eps, data=(), aux_prefix=None):
    """Datalog1S clauses whose minimal model gives ``predicate`` the
    extension ``eps`` (an :class:`EventuallyPeriodicSet`).

    Construction: each prefix point becomes a ground fact; each residue
    class of the tail gets an auxiliary predicate seeded at its first
    member and advanced by the period, feeding ``predicate`` through a
    copy clause — recursion never touches the prefix facts.
    """
    aux_prefix = aux_prefix or ("_%s_cls" % predicate)
    data_terms = tuple(DataTerm.constant(value) for value in data)
    clauses = []
    for point in sorted(eps.prefix):
        clauses.append(
            Clause(
                PredicateAtom(predicate, (TemporalTerm(None, point),), data_terms)
            )
        )
    for index, residue in enumerate(sorted(eps.residues)):
        aux = "%s%d" % (aux_prefix, index)
        first = eps.threshold + (residue - eps.threshold) % eps.period
        clauses.append(
            Clause(PredicateAtom(aux, (TemporalTerm(None, first),), data_terms))
        )
        clauses.append(
            Clause(
                PredicateAtom(aux, (TemporalTerm("t", eps.period),), data_terms),
                (PredicateAtom(aux, (TemporalTerm("t"),), data_terms),),
            )
        )
        clauses.append(
            Clause(
                PredicateAtom(predicate, (TemporalTerm("t"),), data_terms),
                (PredicateAtom(aux, (TemporalTerm("t"),), data_terms),),
            )
        )
    return clauses


def relation_to_datalog1s(relation, predicate="p"):
    """Compile a temporal-arity-1 generalized relation into Datalog1S.

    The relation is restricted to the natural numbers (the CI88
    temporal domain); each data vector of the relation keeps its own
    clauses.  Raises SchemaError for temporal arity != 1.
    """
    if relation.temporal_arity != 1:
        raise SchemaError(
            "Datalog1S predicates have one temporal argument; relation "
            "has %d" % relation.temporal_arity
        )
    clauses = []
    for index, vector in enumerate(sorted(
        {gt.data for gt in relation.tuples}, key=repr
    )):
        eps = relation_extension_as_eps(relation, vector)
        clauses.extend(
            eventually_periodic_to_clauses(
                predicate,
                eps,
                data=vector,
                aux_prefix="_%s_d%d_cls" % (predicate, index),
            )
        )
    return Datalog1SProgram(Program(tuple(clauses)))


def relation_extension_as_eps(relation, data=()):
    """The ℕ-restriction of a temporal-arity-1 relation for one data
    vector, as an EventuallyPeriodicSet.  Exact: works on the aligned
    disjuncts of each tuple."""
    if relation.temporal_arity != 1:
        raise SchemaError("expected temporal arity 1")
    result = EventuallyPeriodicSet.empty()
    for gt in relation.tuples:
        if gt.data != tuple(data):
            continue
        for disjunct in gt.aligned():
            lo, hi = disjunct.zone.difference_interval(1, 0)
            period = disjunct.period
            residue = disjunct.residues[0]
            # Times are period * m + residue with m in [lo, hi].
            if lo == float("-inf"):
                start = 0
            else:
                start = max(period * int(lo) + residue, 0)
            if hi == float("inf"):
                piece = EventuallyPeriodicSet(
                    threshold=start, period=period, residues=[residue % period]
                )
            else:
                end = period * int(hi) + residue
                if end < 0:
                    continue
                members = [
                    t
                    for t in range(start, end + 1)
                    if (t - residue) % period == 0
                ]
                piece = EventuallyPeriodicSet.from_finite(members)
            result = result | piece
    return result


def eps_to_relation(eps, data=()):
    """A temporal-arity-1 generalized relation whose ℕ-extension is
    exactly the given :class:`EventuallyPeriodicSet` (prefix points as
    pinned tuples, tail residues as lrps with a lower bound)."""
    tuples = []
    data = tuple(data)
    for point in sorted(eps.prefix):
        constraints = ConstraintSystem.equal_to_constant(1, 0, point)
        tuples.append(
            GeneralizedTuple((Lrp.constant_carrier(),), data, constraints)
        )
    for residue in sorted(eps.residues):
        first = eps.threshold + (residue - eps.threshold) % eps.period
        constraints = ConstraintSystem.parse("T1 >= %d" % first, 1)
        tuples.append(
            GeneralizedTuple((Lrp(eps.period, residue),), data, constraints)
        )
    return GeneralizedRelation(1, len(data), tuples)


def datalog1s_model_to_relation(model, predicate):
    """The closed-form model of one predicate as a generalized relation
    (temporal arity 1, data arity from the model's vectors).

    Prefix points become constant tuples; each tail residue class
    becomes an lrp with a ``T1 >= first`` constraint.
    """
    keys = [key for key in model.keys() if key[0] == predicate]
    if not keys:
        return GeneralizedRelation.empty(1, 0)
    data_arity = len(keys[0][1])
    tuples = []
    for (_, data) in keys:
        eps = model.set_of(predicate, data)
        for point in sorted(eps.prefix):
            constraints = ConstraintSystem.equal_to_constant(1, 0, point)
            tuples.append(
                GeneralizedTuple((Lrp.constant_carrier(),), data, constraints)
            )
        for residue in sorted(eps.residues):
            first = eps.threshold + (residue - eps.threshold) % eps.period
            constraints = ConstraintSystem.parse("T1 >= %d" % first, 1)
            tuples.append(
                GeneralizedTuple((Lrp(eps.period, residue),), data, constraints)
            )
    return GeneralizedRelation(1, data_arity, tuples)
