"""The temporal Datalog of Chomicki and Imieliński (paper Section 2.2).

Datalog1S is ordinary Datalog in which every predicate carries exactly
one temporal parameter over the natural numbers, and temporal terms
are built from 0 and a single temporal variable with the successor
function.  The paper's Example 2.2 is::

    train_leaves(5; liege, brussels).
    train_leaves(t + 40; liege, brussels) <- train_leaves(t; liege, brussels).
    train_arrives(t + 60; liege, brussels) <- train_leaves(t; liege, brussels).

The minimal model of such a program is **eventually periodic** in each
predicate (the [CI88] result cited in Section 3.1); the evaluator in
:mod:`repro.datalog1s.evaluation` computes that closed form exactly
for forward programs via a frontier (slice-window) automaton, and by
horizon doubling with stabilization checks otherwise.
"""

from repro.datalog1s.ast import Datalog1SProgram, parse_datalog1s
from repro.datalog1s.evaluation import Model1S, minimal_model
from repro.datalog1s.translate import (
    datalog1s_model_to_relation,
    relation_to_datalog1s,
)

__all__ = [
    "Datalog1SProgram",
    "parse_datalog1s",
    "Model1S",
    "minimal_model",
    "relation_to_datalog1s",
    "datalog1s_model_to_relation",
]
