"""Syntax and static checks for Datalog1S.

Datalog1S reuses the clause AST of :mod:`repro.core.ast` (the paper
presents its deductive language as "the extension of the language of
[CI88] to an arbitrary number of temporal arguments", so the subset
relationship is literal) and adds the CI88 restrictions:

* every predicate atom has exactly **one** temporal argument;
* the temporal domain is ℕ — integer constants must be non-negative;
* a non-fact clause uses a single temporal variable, shared by the
  head and all body atoms (terms are ``t + k`` with ``k >= 0`` after
  normalization);
* no interpreted order atoms (``<`` is not in the CI88 language).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ast import Program
from repro.core.parser import parse_program
from repro.util.errors import SchemaError


@dataclass(frozen=True)
class Datalog1SProgram:
    """A validated Datalog1S program (wrapping a core Program)."""

    program: Program

    def __post_init__(self):
        _validate(self.program)

    @property
    def clauses(self):
        return self.program.clauses

    def predicates(self):
        """All predicate names with their data arities."""
        return {
            name: shape[1]
            for name, shape in self.program.schemas().items()
        }

    def data_constants(self):
        """The active domain: every data constant in the program."""
        constants = set()
        for clause in self.clauses:
            atoms = [clause.head] + clause.predicate_atoms()
            atoms += [negated.atom for negated in clause.negated_atoms()]
            for atom in atoms:
                for term in atom.data_args:
                    if not term.is_variable():
                        constants.add(term.value)
        return constants

    @staticmethod
    def _body_entries(clause):
        """Body atoms as ``(predicate, offset_term, data_args, negative)``."""
        entries = [
            (atom.predicate, atom.temporal_args[0], atom.data_args, False)
            for atom in clause.predicate_atoms()
        ]
        entries += [
            (
                negated.atom.predicate,
                negated.atom.temporal_args[0],
                negated.atom.data_args,
                True,
            )
            for negated in clause.negated_atoms()
        ]
        return entries

    def normalized_clauses(self):
        """Variable clauses shifted so the least body offset is 0.

        Returns a list of ``(head_offset, body, head)`` triples where
        ``body`` is a list of ``(predicate, offset, data_args,
        negative)``; variable-free facts appear with ``body == []`` and
        their absolute time as ``head_offset``.  Fully ground rules are
        reported separately by :meth:`ground_rules`.
        """
        normalized = []
        for clause in self.clauses:
            head_term = clause.head.temporal_args[0]
            entries = self._body_entries(clause)
            if not entries:
                normalized.append((head_term.offset, [], clause.head))
                continue
            if head_term.var is None:
                continue  # fully ground rule, see ground_rules()
            shift = min(term.offset for (_, term, __, ___) in entries)
            body = [
                (pred, term.offset - shift, data, negative)
                for (pred, term, data, negative) in entries
            ]
            normalized.append((head_term.offset - shift, body, clause.head))
        return normalized

    def ground_rules(self):
        """Rules whose atoms all carry absolute times (these arise from
        unboxed Templog clauses asserted at time 0).

        Returns ``(head_time, body, head)`` triples with ``body`` a
        list of ``(predicate, time, data_args, negative)``.
        """
        rules = []
        for clause in self.clauses:
            head_term = clause.head.temporal_args[0]
            entries = self._body_entries(clause)
            if entries and head_term.var is None:
                body = [
                    (pred, term.offset, data, negative)
                    for (pred, term, data, negative) in entries
                ]
                rules.append((head_term.offset, body, clause.head))
        return rules

    def is_forward(self):
        """True when every rule's head time is >= every body time —
        the class the frontier automaton evaluates exactly."""
        for head_offset, body, _ in self.normalized_clauses():
            if body and head_offset < max(offset for (_, offset, __, ___) in body):
                return False
        for head_time, body, _ in self.ground_rules():
            if head_time < max(time for (_, time, __, ___) in body):
                return False
        return True

    def strata(self):
        """Clause strata for stratified negation (list of
        :class:`Datalog1SProgram`, in evaluation order)."""
        from repro.core.stratify import stratify

        _, clause_strata = stratify(self.program)
        return [
            Datalog1SProgram(Program(tuple(clauses)))
            for clauses in clause_strata
        ]

    def __str__(self):
        return str(self.program)

    def __len__(self):
        return len(self.clauses)


def _validate(program):
    program.validate()
    for clause in program.clauses:
        atoms = [clause.head] + clause.predicate_atoms()
        atoms += [negated.atom for negated in clause.negated_atoms()]
        if clause.constraint_atoms():
            raise SchemaError(
                "Datalog1S has no interpreted order atoms: %s" % clause
            )
        for atom in atoms:
            if atom.temporal_arity != 1:
                raise SchemaError(
                    "Datalog1S predicates carry exactly one temporal "
                    "argument: %s" % atom
                )
        variables = set()
        for atom in atoms:
            term = atom.temporal_args[0]
            if term.var is not None:
                variables.add(term.var)
                if term.offset < 0:
                    raise SchemaError(
                        "Datalog1S temporal terms are built with the "
                        "successor only (no predecessor): %s" % atom
                    )
            elif term.offset < 0:
                raise SchemaError(
                    "Datalog1S times are natural numbers: %s" % atom
                )
        if len(variables) > 1:
            raise SchemaError(
                "a Datalog1S clause uses a single temporal variable: %s"
                % clause
            )
        body_atoms = clause.predicate_atoms() + [
            negated.atom for negated in clause.negated_atoms()
        ]
        if body_atoms:
            head_term = clause.head.temporal_args[0]
            body_ground = [
                atom.temporal_args[0].var is None for atom in body_atoms
            ]
            if head_term.var is None:
                # Fully ground rule (from unboxed Templog clauses):
                # every body atom must be ground too.
                if not all(body_ground):
                    raise SchemaError(
                        "a ground-headed rule needs a ground body: %s" % clause
                    )
            elif any(body_ground):
                raise SchemaError(
                    "mixing absolute times and the temporal variable "
                    "in one clause is not supported: %s" % clause
                )
        else:
            term = clause.head.temporal_args[0]
            if term.var is not None:
                raise SchemaError(
                    "a Datalog1S fact must carry a ground time: %s" % clause
                )


def parse_datalog1s(text):
    """Parse and validate Datalog1S source text."""
    return Datalog1SProgram(parse_program(text))
