"""Tests for the generalized relation algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Comparison, ConstraintSystem, TemporalTerm
from repro.gdb import GeneralizedRelation, GeneralizedTuple
from repro.lrp import Lrp
from repro.util.errors import SchemaError

W = 30


def rel_of(*tuples, m=1, l=0):
    return GeneralizedRelation(m, l, tuples)


def interval_tuple(low, high, period=1, offset=0):
    text = "T1 >= %d & T1 < %d" % (low, high)
    return GeneralizedTuple(
        (Lrp(period, offset),), (), ConstraintSystem.parse(text, 1)
    )


small_lrps = st.builds(Lrp, st.integers(1, 5), st.integers(0, 4))


@st.composite
def small_relations(draw, m=1, l=0, max_tuples=3):
    n = draw(st.integers(0, max_tuples))
    tuples = []
    for _ in range(n):
        lrps = tuple(draw(small_lrps) for _ in range(m))
        atoms = []
        for _ in range(draw(st.integers(0, 2))):
            op = draw(st.sampled_from(["<", "<=", "=", ">="]))
            i = draw(st.integers(0, m - 1))
            c = draw(st.integers(-10, 10))
            if m > 1 and draw(st.booleans()):
                j = draw(st.integers(0, m - 1))
                right = TemporalTerm(j, c)
            else:
                right = TemporalTerm(None, c)
            atoms.append(Comparison(op, TemporalTerm(i), right))
        data = tuple(draw(st.sampled_from(["a", "b"])) for _ in range(l))
        tuples.append(
            GeneralizedTuple(lrps, data, ConstraintSystem.from_atoms(m, atoms))
        )
    return GeneralizedRelation(m, l, tuples)


class TestBasics:
    def test_empty(self):
        rel = GeneralizedRelation.empty(2, 1)
        assert rel.is_empty()
        assert len(rel) == 0

    def test_schema_check(self):
        rel = GeneralizedRelation.empty(2, 0)
        with pytest.raises(SchemaError):
            rel.with_tuple(GeneralizedTuple((Lrp(2, 0),)))

    def test_universe(self):
        uni = GeneralizedRelation.universe(1)
        for t in (-100, 0, 37):
            assert uni.contains_point((t,))

    def test_universe_with_data(self):
        uni = GeneralizedRelation.universe(1, [("a",), ("b",)])
        assert uni.contains_point((5,), ("a",))
        assert uni.contains_point((5,), ("b",))
        assert not uni.contains_point((5,), ("c",))

    def test_extension_window(self):
        rel = rel_of(interval_tuple(0, 6, period=2))
        assert rel.extension(-4, 10) == {(0,), (2,), (4,)}

    def test_data_values(self):
        rel = GeneralizedRelation(
            0, 1, [GeneralizedTuple((), ("x",)), GeneralizedTuple((), ("y",))]
        )
        assert rel.data_values(0) == {"x", "y"}


class TestUnionIntersect:
    def test_union(self):
        a = rel_of(interval_tuple(0, 3))
        b = rel_of(interval_tuple(5, 7))
        assert (a.union(b)).extension(-2, 10) == {(0,), (1,), (2,), (5,), (6,)}

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            rel_of(interval_tuple(0, 3)).union(GeneralizedRelation.empty(2))

    def test_intersect_crt(self):
        # 4n+1 ∩ 6n+3 = 12n+9
        a = rel_of(GeneralizedTuple((Lrp(4, 1),)))
        b = rel_of(GeneralizedTuple((Lrp(6, 3),)))
        meet = a.intersect(b)
        assert len(meet) == 1
        assert meet.tuples[0].lrps == (Lrp(12, 9),)

    def test_intersect_disjoint_residues(self):
        a = rel_of(GeneralizedTuple((Lrp(4, 0),)))
        b = rel_of(GeneralizedTuple((Lrp(4, 1),)))
        assert a.intersect(b).is_empty()

    def test_intersect_data_filter(self):
        a = GeneralizedRelation(0, 1, [GeneralizedTuple((), ("x",))])
        b = GeneralizedRelation(0, 1, [GeneralizedTuple((), ("y",))])
        assert a.intersect(b).is_empty()

    @given(small_relations(), small_relations())
    @settings(max_examples=50)
    def test_intersect_extensional(self, a, b):
        meet = a.intersect(b)
        assert meet.extension(-W, W) == (a.extension(-W, W) & b.extension(-W, W))

    @given(small_relations(), small_relations())
    @settings(max_examples=50)
    def test_union_extensional(self, a, b):
        assert a.union(b).extension(-W, W) == (a.extension(-W, W) | b.extension(-W, W))


class TestSelectProjectShift:
    def test_select(self):
        rel = rel_of(GeneralizedTuple((Lrp(2, 0),)))
        atoms = [Comparison(">=", TemporalTerm(0), TemporalTerm(None, 0))]
        selected = rel.select(atoms)
        assert selected.extension(-6, 6) == {(0,), (2,), (4,)}

    def test_select_data(self):
        rel = GeneralizedRelation(
            1,
            1,
            [
                GeneralizedTuple((Lrp(2, 0),), ("x",)),
                GeneralizedTuple((Lrp(2, 0),), ("y",)),
            ],
        )
        assert rel.select_data_constant(0, "x").data_values(0) == {"x"}

    def test_select_data_equal(self):
        rel = GeneralizedRelation(
            0,
            2,
            [
                GeneralizedTuple((), ("x", "x")),
                GeneralizedTuple((), ("x", "y")),
            ],
        )
        assert len(rel.select_data_equal(0, 1)) == 1

    def test_shift(self):
        rel = rel_of(interval_tuple(0, 3))
        shifted = rel.shift(0, 10)
        assert shifted.extension(0, 20) == {(10,), (11,), (12,)}

    @given(small_relations(m=2), st.integers(-10, 10))
    @settings(max_examples=40)
    def test_shift_extensional(self, rel, delta):
        shifted = rel.shift(1, delta)
        expected = {(t1, t2 + delta) for (t1, t2) in rel.extension(-15, 15)}
        got = shifted.extension(-30, 30)
        assert expected <= got

    def test_project(self):
        gt = GeneralizedTuple(
            (Lrp(168, 8), Lrp(168, 10)),
            ("database",),
            ConstraintSystem.parse("T2 = T1 + 2", 2),
        )
        rel = GeneralizedRelation(2, 1, [gt])
        projected = rel.project([0], [0])
        assert projected.temporal_arity == 1
        assert projected.contains_point((8,), ("database",))
        assert not projected.contains_point((10,), ("database",))

    def test_permuted(self):
        rel = GeneralizedRelation(
            2, 0, [GeneralizedTuple((Lrp(2, 0), Lrp(3, 1)))]
        )
        swapped = rel.permuted([1, 0])
        assert swapped.contains_point((1, 0))


class TestDifferenceComplement:
    def test_difference(self):
        a = rel_of(interval_tuple(0, 10))
        b = rel_of(interval_tuple(3, 6))
        assert a.difference(b).extension(-2, 12) == {
            (t,) for t in (0, 1, 2, 6, 7, 8, 9)
        }

    @given(small_relations(), small_relations())
    @settings(max_examples=40)
    def test_difference_extensional(self, a, b):
        diff = a.difference(b)
        assert diff.extension(-W, W) == a.extension(-W, W) - b.extension(-W, W)

    def test_complement_temporal(self):
        evens = rel_of(GeneralizedTuple((Lrp(2, 0),)))
        odds = evens.complement()
        assert odds.extension(-4, 4) == {(-3,), (-1,), (1,), (3,)}

    @given(small_relations())
    @settings(max_examples=40)
    def test_complement_extensional(self, rel):
        comp = rel.complement()
        universe = {(t,) for t in range(-W, W)}
        assert comp.extension(-W, W) == universe - rel.extension(-W, W)

    @given(small_relations())
    @settings(max_examples=30)
    def test_double_complement(self, rel):
        assert rel.complement().complement().equivalent(rel)

    def test_complement_with_data(self):
        rel = GeneralizedRelation(
            1,
            1,
            [
                GeneralizedTuple(
                    (Lrp(2, 0),), ("x",), ConstraintSystem.parse("T1 >= 0", 1)
                )
            ],
        )
        comp = rel.complement(data_domains=[["x", "y"]])
        assert comp.contains_point((-2,), ("x",))
        assert comp.contains_point((1,), ("x",))
        assert comp.contains_point((0,), ("y",))
        assert not comp.contains_point((0,), ("x",))


class TestContainmentEquivalence:
    def test_contains(self):
        big = rel_of(interval_tuple(0, 10))
        small = rel_of(interval_tuple(2, 5))
        assert big.contains(small)
        assert not small.contains(big)

    def test_equivalent_different_representations(self):
        one = rel_of(GeneralizedTuple((Lrp(2, 0),)))
        two = rel_of(
            GeneralizedTuple((Lrp(4, 0),)), GeneralizedTuple((Lrp(4, 2),))
        )
        assert one.equivalent(two)

    @given(small_relations(), small_relations())
    @settings(max_examples=30)
    def test_contains_extensional(self, a, b):
        if a.contains(b):
            assert b.extension(-W, W) <= a.extension(-W, W)


class TestNormalizeCoalesce:
    def test_normalize_duplicates(self):
        gt = interval_tuple(0, 5)
        rel = rel_of(gt, gt)
        assert len(rel.normalize()) == 1

    def test_normalize_prunes_empty(self):
        empty_gt = GeneralizedTuple(
            (Lrp(4, 0), Lrp(4, 2)),
            (),
            ConstraintSystem.parse("T1 <= T2 & T2 <= T1 + 1", 2),
        )
        rel = GeneralizedRelation(2, 0, [empty_gt])
        assert len(rel.normalize()) == 0

    def test_normalize_subsumed(self):
        big = interval_tuple(0, 10)
        small = interval_tuple(2, 5)
        rel = rel_of(big, small)
        assert len(rel.normalize(prune_subsumed=True)) == 1

    def test_coalesce_zone_merge(self):
        a = interval_tuple(0, 5)
        b = interval_tuple(5, 10)
        merged = rel_of(a, b).coalesce()
        assert len(merged) == 1
        assert merged.extension(-2, 12) == {(t,) for t in range(10)}

    def test_coalesce_zone_merge_rejects_gap(self):
        a = interval_tuple(0, 5)
        b = interval_tuple(6, 10)
        merged = rel_of(a, b).coalesce()
        assert len(merged) == 2

    def test_coalesce_lrp_merge(self):
        evens = GeneralizedTuple((Lrp(4, 0),))
        twos = GeneralizedTuple((Lrp(4, 2),))
        merged = rel_of(evens, twos).coalesce()
        assert len(merged) == 1
        assert merged.tuples[0].lrps == (Lrp(2, 0),)

    @given(small_relations())
    @settings(max_examples=40)
    def test_coalesce_preserves_extension(self, rel):
        assert rel.coalesce().extension(-W, W) == rel.extension(-W, W)

    @given(small_relations())
    @settings(max_examples=30)
    def test_normalize_preserves_extension(self, rel):
        normalized = rel.normalize(prune_subsumed=True)
        assert normalized.extension(-W, W) == rel.extension(-W, W)


class TestProduct:
    def test_product(self):
        a = rel_of(interval_tuple(0, 2))
        b = rel_of(interval_tuple(10, 12))
        prod = a.product(b)
        assert prod.temporal_arity == 2
        assert prod.extension(-1, 15) == {
            (0, 10),
            (0, 11),
            (1, 10),
            (1, 11),
        }

    @given(small_relations(), small_relations())
    @settings(max_examples=30)
    def test_product_extensional(self, a, b):
        prod = a.product(b)
        expected = {
            ta + tb
            for ta in a.extension(-10, 10)
            for tb in b.extension(-10, 10)
        }
        assert prod.extension(-10, 10) == expected
