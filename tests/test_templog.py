"""Tests for Templog: parsing, TL1 reduction, translation, models."""

import pytest

from repro.lrp import EventuallyPeriodicSet
from repro.templog import (
    Diamond,
    TemplogAtom,
    parse_templog,
    templog_minimal_model,
    templog_to_datalog1s,
    to_tl1,
)
from repro.templog.tl1 import is_tl1
from repro.util.errors import ParseError

EXAMPLE_23 = """
next^5 train_leaves(liege, brussels).
always (next^40 train_leaves(X, Y) <- train_leaves(X, Y)).
always (next^60 train_arrives(X, Y) <- train_leaves(X, Y)).
"""


class TestParsing:
    def test_example_23(self):
        program = parse_templog(EXAMPLE_23)
        assert len(program) == 3
        first = program.clauses[0]
        assert first.head == TemplogAtom(
            "train_leaves",
            first.head.data_args,
            5,
        )
        assert not first.boxed
        assert program.clauses[1].boxed

    def test_next_chains(self):
        program = parse_templog("next next next p.")
        assert program.clauses[0].head.shift == 3

    def test_box_symbol(self):
        program = parse_templog("[] (next p <- p).")
        assert program.clauses[0].boxed

    def test_diamond_keyword_and_symbol(self):
        for text in (
            "always (p <- sometime(q)).",
            "always (p <- eventually(q)).",
            "always (p <- <>(q)).",
        ):
            program = parse_templog(text)
            body = program.clauses[0].body
            assert isinstance(body[0], Diamond)

    def test_nested_diamond(self):
        program = parse_templog("always (p <- <>(q, <>(r))).")
        outer = program.clauses[0].body[0]
        assert isinstance(outer.elements[1], Diamond)

    def test_propositional_atom(self):
        program = parse_templog("p. always (q <- p).")
        assert program.clauses[0].head.data_args == ()

    def test_arity_consistency(self):
        with pytest.raises(ParseError):
            parse_templog("p(a). always (p <- p(a)).")

    def test_str_roundtrip(self):
        program = parse_templog(EXAMPLE_23)
        again = parse_templog(str(program))
        assert str(again) == str(program)


class TestTL1:
    def test_already_tl1(self):
        program = parse_templog(EXAMPLE_23)
        assert is_tl1(program)
        assert to_tl1(program) is not program  # new object, same content
        assert len(to_tl1(program)) == len(program)

    def test_diamond_elimination(self):
        program = parse_templog("always (p <- <>(q)).")
        reduced = to_tl1(program)
        assert is_tl1(reduced)
        # Two auxiliary clauses are introduced.
        assert len(reduced) == 3
        aux_preds = {
            clause.head.predicate
            for clause in reduced.clauses
            if clause.head.predicate.startswith("_ev")
        }
        assert len(aux_preds) == 1

    def test_nested_diamond_elimination(self):
        program = parse_templog("always (p <- <>(q, <>(r))).")
        reduced = to_tl1(program)
        assert is_tl1(reduced)
        aux_preds = {
            clause.head.predicate
            for clause in reduced.clauses
            if clause.head.predicate.startswith("_ev")
        }
        assert len(aux_preds) == 2

    def test_data_variables_flow_through_diamond(self):
        program = parse_templog("always (p(X) <- <>(q(X))).")
        reduced = to_tl1(program)
        aux_clause = next(
            clause
            for clause in reduced.clauses
            if clause.head.predicate.startswith("_ev")
            and not isinstance(clause.body[0], Diamond)
            and clause.body[0].predicate == "q"
        )
        assert len(aux_clause.head.data_args) == 1


class TestTranslation:
    def test_example_23_matches_example_22(self):
        # The Templog translation must equal the hand-written CI
        # program of Example 2.2.
        program = parse_templog(EXAMPLE_23)
        translated = templog_to_datalog1s(program)
        model = templog_minimal_model(program)
        leaves = model.set_of("train_leaves", ("liege", "brussels"))
        assert leaves == EventuallyPeriodicSet(
            threshold=5, period=40, residues=[5]
        )
        arrives = model.set_of("train_arrives", ("liege", "brussels"))
        assert 65 in arrives and 105 in arrives and 64 not in arrives
        assert translated.is_forward()

    def test_unboxed_clause_at_time_zero_only(self):
        program = parse_templog(
            """
            q.
            next^3 q.
            p <- q.
            """
        )
        model = templog_minimal_model(program)
        # The unboxed rule p <- q fires at time 0 only.
        assert model.holds("p", 0)
        assert not model.holds("p", 3)
        assert model.holds("q", 3)

    def test_boxed_rule_everywhere(self):
        program = parse_templog(
            """
            q.
            next^3 q.
            always (p <- q).
            """
        )
        model = templog_minimal_model(program)
        assert model.holds("p", 0) and model.holds("p", 3)
        assert not model.holds("p", 1)

    def test_diamond_semantics_finite(self):
        # ◇q with q only at 7: p holds exactly on [0, 7].
        program = parse_templog(
            """
            next^7 q.
            always (p <- <>(q)).
            """
        )
        model = templog_minimal_model(program)
        assert model.set_of("p") == EventuallyPeriodicSet.from_finite(range(8))

    def test_diamond_semantics_infinite(self):
        program = parse_templog(
            """
            next^7 q.
            always (next^40 q <- q).
            always (p <- <>(q)).
            """
        )
        model = templog_minimal_model(program)
        assert model.set_of("p").is_all()

    def test_diamond_conjunction(self):
        # ◇(a, b): some future instant where both hold.
        program = parse_templog(
            """
            next^4 a.
            next^4 b.
            next^9 a.
            always (p <- <>(a, b)).
            """
        )
        model = templog_minimal_model(program)
        # a∧b only at 4; so p on [0,4].
        assert model.set_of("p") == EventuallyPeriodicSet.from_finite(range(5))

    def test_aux_predicates_hidden(self):
        program = parse_templog("always (p <- <>(q)). next^2 q.")
        model = templog_minimal_model(program)
        assert all(not name.startswith("_ev") for name in model.predicates())

    def test_next_in_body(self):
        # p holds now if q holds at the next instant: backward rule.
        program = parse_templog(
            """
            next^6 q.
            always (p <- next q).
            """
        )
        model = templog_minimal_model(program)
        assert model.set_of("p") == EventuallyPeriodicSet.from_finite([5])
