"""Retry policy: the backoff schedule must be exponential, capped,
jittered deterministically by seed, and the retry-vs-fail-fast
classification must follow the error type, never timing."""

import pytest

from repro.runtime.faults import InjectedFaultError, TransientFaultError
from repro.service.retry import RetryPolicy, is_transient
from repro.util.errors import (
    EvaluationAbortedError,
    ParseError,
    WorkerDiedError,
)


class TestSchedule:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, jitter=0.0
        )
        assert policy.schedule("job") == [0.1, 0.2, 0.4]

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=10.0, max_delay=5.0,
            jitter=0.0,
        )
        assert policy.schedule("job") == [1.0, 5.0, 5.0, 5.0, 5.0]

    def test_seeded_jitter_is_reproducible(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        again = RetryPolicy(max_attempts=5, seed=7)
        assert policy.schedule("job-1") == again.schedule("job-1")

    def test_jitter_decorrelates_jobs_and_seeds(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        assert policy.schedule("job-1") != policy.schedule("job-2")
        assert (
            policy.schedule("job-1")
            != RetryPolicy(max_attempts=5, seed=8).schedule("job-1")
        )

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=2.0, max_delay=100.0,
            jitter=0.5, seed=3,
        )
        for attempt in range(1, 8):
            raw = min(0.1 * 2.0 ** (attempt - 1), 100.0)
            delay = policy.delay("job", attempt)
            assert raw * 0.5 <= delay <= raw * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestClassification:
    def test_transient_classes_are_retryable(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retryable(TransientFaultError("clause", 1), 1)
        assert policy.retryable(WorkerDiedError("gone"), 2)

    def test_permanent_classes_fail_fast(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.retryable(InjectedFaultError("clause", 1), 1)
        assert not policy.retryable(ParseError("bad"), 1)
        assert not policy.retryable(RuntimeError("bug"), 1)

    def test_attempt_budget_exhausts_retries(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.retryable(TransientFaultError("clause", 1), 2)
        assert not policy.retryable(TransientFaultError("clause", 1), 3)

    def test_wrapped_cause_is_classified(self):
        transient = EvaluationAbortedError("aborted")
        transient.__cause__ = TransientFaultError("clause", 1)
        permanent = EvaluationAbortedError("aborted")
        permanent.__cause__ = RuntimeError("bug")
        assert is_transient(transient)
        assert not is_transient(permanent)
        assert not is_transient(EvaluationAbortedError("bare"))
