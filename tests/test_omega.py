"""Tests for the ω-automata machinery and the expressiveness checks."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrp import EventuallyPeriodicSet
from repro.omega import (
    BuchiAutomaton,
    Dfa,
    FiniteAcceptanceAutomaton,
    Nfa,
    buchi_eventually,
    buchi_infinitely_often,
    characteristic_buchi,
    dfa_position_multiple,
    dfa_suffix_language,
    is_deterministic_buchi_open,
    is_star_free,
)
from repro.omega.expressiveness import (
    dfa_one_at_even_position,
    dfa_ones_multiple,
    finite_acceptance_eventually,
    lasso_of_eps,
)
from repro.omega.monoid import group_witness, is_aperiodic, syntactic_monoid

ALPHABET = ("0", "1")


def all_words(max_length, alphabet=ALPHABET):
    for length in range(max_length + 1):
        yield from itertools.product(alphabet, repeat=length)


class TestDfaBasics:
    def test_position_multiple(self):
        dfa = dfa_position_multiple(3)
        assert dfa.accepts(())
        assert dfa.accepts(("0", "1", "0"))
        assert not dfa.accepts(("0", "1"))

    def test_suffix_language(self):
        dfa = dfa_suffix_language(("1", "0", "1"))
        assert dfa.accepts(("1", "0", "1"))
        assert dfa.accepts(("0", "0", "1", "0", "1"))
        assert dfa.accepts(("1", "0", "1", "0", "1"))  # overlap
        assert not dfa.accepts(("1", "0", "0"))
        assert not dfa.accepts(())

    def test_complement(self):
        dfa = dfa_position_multiple(2)
        comp = dfa.complement()
        for word in all_words(5):
            assert dfa.accepts(word) != comp.accepts(word)

    def test_boolean_ops(self):
        evens = dfa_position_multiple(2)
        threes = dfa_position_multiple(3)
        meet = evens.intersection(threes)
        join = evens.union(threes)
        diff = evens.difference(threes)
        for word in all_words(7):
            a, b = evens.accepts(word), threes.accepts(word)
            assert meet.accepts(word) == (a and b)
            assert join.accepts(word) == (a or b)
            assert diff.accepts(word) == (a and not b)

    def test_minimize_preserves_language(self):
        dfa = dfa_suffix_language(("1", "1"))
        small = dfa.minimize()
        for word in all_words(6):
            assert dfa.accepts(word) == small.accepts(word)
        assert len(small.states) <= len(dfa.states)

    def test_minimize_canonical_size(self):
        # |w| ≡ 0 mod 6 needs exactly 6 states.
        assert len(dfa_position_multiple(6).minimize().states) == 6

    def test_incomplete_dfa_rejected(self):
        with pytest.raises(ValueError):
            Dfa({0}, ALPHABET, {(0, "0"): 0}, 0, set())

    def test_is_empty_and_some_word(self):
        dfa = dfa_suffix_language(("1",))
        assert not dfa.is_empty()
        word = dfa.some_word()
        assert dfa.accepts(word)
        nothing = dfa.intersection(dfa.complement())
        assert nothing.is_empty()
        assert nothing.some_word() is None

    def test_equivalent(self):
        a = dfa_position_multiple(2)
        b = dfa_position_multiple(2).minimize()
        assert a.equivalent(b)
        assert not a.equivalent(dfa_position_multiple(3))


class TestNfa:
    def test_determinize(self):
        # Words with a '1' three letters from the end.
        transitions = {
            ("q0", "0"): {"q0"},
            ("q0", "1"): {"q0", "q1"},
            ("q1", "0"): {"q2"},
            ("q1", "1"): {"q2"},
            ("q2", "0"): {"q3"},
            ("q2", "1"): {"q3"},
        }
        nfa = Nfa({"q0", "q1", "q2", "q3"}, ALPHABET, transitions, {"q0"}, {"q3"})
        dfa = nfa.determinize()
        for word in all_words(7):
            expected = len(word) >= 3 and word[-3] == "1"
            assert nfa.accepts(word) == expected
            assert dfa.accepts(word) == expected


class TestStarFreeness:
    def test_position_multiple_not_star_free(self):
        # (ΣΣ)* contains the group Z/2: the classic non-aperiodic case.
        assert not is_star_free(dfa_position_multiple(2))
        assert not is_star_free(dfa_position_multiple(3))

    def test_suffix_language_star_free(self):
        assert is_star_free(dfa_suffix_language(("1", "0")))
        assert is_star_free(dfa_suffix_language(("1", "1", "0")))

    def test_even_position_query_not_star_free(self):
        # "p holds at some even time": the separation the paper draws
        # between the deductive languages and the FO language of KSW90.
        assert not is_star_free(dfa_one_at_even_position())

    def test_ones_multiple_not_star_free(self):
        assert not is_star_free(dfa_ones_multiple(2))

    def test_trivial_languages_star_free(self):
        sigma_star = Dfa(
            {0}, ALPHABET, {(0, "0"): 0, (0, "1"): 0}, 0, {0}
        )
        assert is_star_free(sigma_star)
        assert is_star_free(sigma_star.complement())

    def test_group_witness(self):
        monoid = syntactic_monoid(dfa_position_multiple(2))
        assert not is_aperiodic(monoid)
        assert group_witness(monoid) is not None
        aperiodic = syntactic_monoid(dfa_suffix_language(("1",)))
        assert group_witness(aperiodic) is None


class TestBuchi:
    def test_eventually_accepts(self):
        buchi = buchi_eventually()
        assert buchi.accepts_lasso(("0", "0", "1"), ("0",))
        assert buchi.accepts_lasso((), ("0", "1"))
        assert not buchi.accepts_lasso((), ("0",))

    def test_infinitely_often(self):
        buchi = buchi_infinitely_often()
        assert buchi.accepts_lasso((), ("0", "1"))
        assert buchi.accepts_lasso(("1", "1"), ("1",))
        assert not buchi.accepts_lasso(("1", "1", "1"), ("0",))

    def test_emptiness(self):
        buchi = buchi_infinitely_often()
        assert not buchi.is_empty()
        nothing = BuchiAutomaton(
            {0}, ALPHABET, {(0, "0"): {0}, (0, "1"): {0}}, {0}, set()
        )
        assert nothing.is_empty()

    def test_union(self):
        union = buchi_eventually().union(buchi_infinitely_often())
        assert union.accepts_lasso(("1",), ("0",))  # eventually-1 side
        assert union.accepts_lasso((), ("0", "1"))  # both
        assert not union.accepts_lasso((), ("0",))

    def test_intersection(self):
        # infinitely many 1s AND infinitely many 0s
        ones = buchi_infinitely_often("1")
        zeros = buchi_infinitely_often("0")
        both = ones.intersection(zeros)
        assert both.accepts_lasso((), ("0", "1"))
        assert not both.accepts_lasso((), ("1",))
        assert not both.accepts_lasso((), ("0",))
        assert not both.is_empty()

    def test_intersection_empty(self):
        ones = buchi_infinitely_often("1")
        # "eventually always 0" as det Büchi is not expressible; use
        # intersection with "never 1" (safety) instead.
        never_one = BuchiAutomaton(
            {"ok"}, ALPHABET, {("ok", "0"): {"ok"}}, {"ok"}, {"ok"}
        )
        assert ones.intersection(never_one).is_empty()

    def test_deterministic_check(self):
        assert buchi_eventually().is_deterministic()
        nondet = BuchiAutomaton(
            {0, 1},
            ALPHABET,
            {(0, "0"): {0, 1}, (0, "1"): {0}, (1, "0"): {1}, (1, "1"): {1}},
            {0},
            {1},
        )
        assert not nondet.is_deterministic()


class TestFinitelyRegular:
    def test_eventually_is_open(self):
        assert is_deterministic_buchi_open(buchi_eventually())

    def test_infinitely_often_not_open(self):
        # The paper's hierarchy: "infinitely often p" needs the full
        # ω-regular class (stratified negation), beyond finitely
        # regular.
        assert not is_deterministic_buchi_open(buchi_infinitely_often())

    def test_sigma_omega_open(self):
        everything = BuchiAutomaton(
            {0}, ALPHABET, {(0, "0"): {0}, (0, "1"): {0}}, {0}, {0}
        )
        assert is_deterministic_buchi_open(everything)

    def test_requires_deterministic(self):
        nondet = BuchiAutomaton(
            {0, 1},
            ALPHABET,
            {(0, "0"): {0, 1}, (0, "1"): {0}, (1, "0"): {1}, (1, "1"): {1}},
            {0},
            {1},
        )
        with pytest.raises(ValueError):
            is_deterministic_buchi_open(nondet)

    def test_requires_complete(self):
        partial = BuchiAutomaton(
            {0}, ALPHABET, {(0, "0"): {0}}, {0}, {0}
        )
        with pytest.raises(ValueError):
            is_deterministic_buchi_open(partial)

    def test_finite_acceptance_eventually(self):
        fa = finite_acceptance_eventually()
        assert fa.accepts_lasso(("0", "1"), ("0",))
        assert fa.accepts_lasso((), ("0", "0", "1"))
        assert not fa.accepts_lasso((), ("0",))
        assert not fa.is_empty()

    def test_finite_acceptance_to_buchi(self):
        fa = finite_acceptance_eventually()
        buchi = fa.to_buchi()
        for prefix, loop in (
            (("1",), ("0",)),
            ((), ("0", "1")),
            ((), ("0",)),
            (("0", "0"), ("1", "0")),
        ):
            assert fa.accepts_lasso(prefix, loop) == buchi.accepts_lasso(
                prefix, loop
            )


class TestCharacteristicAutomata:
    @given(
        st.builds(
            EventuallyPeriodicSet,
            st.integers(0, 5),
            st.integers(1, 6),
            st.sets(st.integers(0, 5), max_size=4),
            st.sets(st.integers(0, 4), max_size=4),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_accepts_own_word(self, eps):
        buchi = characteristic_buchi(eps)
        prefix, loop = lasso_of_eps(eps)
        assert buchi.accepts_lasso(prefix, loop)

    def test_rejects_other_words(self):
        eps = EventuallyPeriodicSet(period=2, residues=[0])
        buchi = characteristic_buchi(eps)
        assert buchi.accepts_lasso((), ("1", "0"))
        assert not buchi.accepts_lasso((), ("0", "1"))
        assert not buchi.accepts_lasso((), ("1",))
        assert not buchi.accepts_lasso(("0",), ("1", "0"))

    def test_distinct_sets_distinct_languages(self):
        a = EventuallyPeriodicSet(period=2, residues=[0])
        b = EventuallyPeriodicSet(period=3, residues=[0])
        automaton_a = characteristic_buchi(a)
        _, loop_b = lasso_of_eps(b)
        assert not automaton_a.accepts_lasso((), loop_b)
