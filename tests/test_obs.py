"""The observability layer: the typed event bus in ``util.hooks``, the
metrics registry (counters, gauges, fixed-bucket histograms with an
injectable clock), the JSONL trace recorder, and the profile collector
that ties plan-operator events back to the engine's per-round stats."""

import json
import threading

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, ProfileCollector, TraceRecorder
from repro.util import hooks

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestEventBus:
    def test_no_sinks_by_default(self):
        assert hooks.SINKS == ()
        assert not hooks.active()
        hooks.emit("engine.round", {"round": 1})  # silently dropped

    def test_subscribed_installs_and_removes(self):
        events = []
        with hooks.subscribed(lambda kind, fields: events.append((kind, fields))):
            assert hooks.active()
            hooks.emit("engine.round", {"round": 1})
        assert not hooks.active()
        hooks.emit("engine.round", {"round": 2})
        assert events == [("engine.round", {"round": 1})]

    def test_subscriber_exceptions_are_swallowed(self):
        good = []

        def bad(kind, fields):
            raise RuntimeError("sink crashed")

        with hooks.subscribed(bad, lambda kind, fields: good.append(kind)):
            hooks.emit("plan.operator", {})
        assert good == ["plan.operator"]

    def test_unsubscribe_is_idempotent(self):
        sink = lambda kind, fields: None  # noqa: E731
        hooks.subscribe(sink)
        hooks.unsubscribe(sink)
        hooks.unsubscribe(sink)
        assert hooks.SINKS == ()


class TestMetrics:
    def test_counter_monotone(self):
        reg = MetricsRegistry()
        counter = reg.counter("jobs_total", "Jobs.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth", "Depth.")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_registration_idempotent_and_conflicts_typed(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "X.")
        assert reg.counter("x_total") is a
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_histogram_bucketing_boundaries(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 1.0, 5.0, 50.0):
            hist.observe(value)
        # Cumulative le-buckets: bounds are inclusive upper edges.
        assert hist.bucket_counts() == [
            (0.1, 2),
            (1.0, 4),
            (10.0, 5),
            (float("inf"), 6),
        ]
        assert hist.count == 6
        assert hist.sum == pytest.approx(56.65)

    def test_histogram_timer_uses_injected_clock(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        hist = reg.histogram("work", "Work.", buckets=(1.0, 10.0))
        with hist.time():
            clock.advance(3.5)
        assert hist.count == 1
        assert hist.sum == pytest.approx(3.5)
        assert hist.bucket_counts() == [(1.0, 0), (10.0, 1), (float("inf"), 1)]

    def test_labelled_series_are_independent(self):
        reg = MetricsRegistry()
        family = reg.counter("out_total", "Outcomes.", labelnames=("outcome",))
        family.labels(outcome="ok").inc(2)
        family.labels(outcome="failed").inc()
        assert family.labels(outcome="ok").value == 2
        assert family.labels(outcome="failed").value == 1

    def test_render_is_prometheus_text(self):
        clock = FakeClock()
        reg = MetricsRegistry(clock=clock)
        reg.counter("jobs_total", "Jobs.", labelnames=("state",)).labels(
            state="ok"
        ).inc(3)
        hist = reg.histogram("lat_seconds", "Latency.", buckets=(0.5,))
        hist.observe(0.25)
        text = reg.render()
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{state="ok"} 3' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert 'lat_seconds_count 1' in text

    def test_to_dict_is_json_safe(self):
        reg = MetricsRegistry()
        reg.histogram("h", "H.").observe(0.002)
        reg.gauge("g", "G.").set(1.5)
        payload = json.loads(json.dumps(reg.to_dict()))
        assert payload["h"]["kind"] == "histogram"
        assert payload["g"]["series"][0]["value"] == 1.5

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_registry_is_thread_safe(self):
        reg = MetricsRegistry()
        counter = reg.counter("n_total", "N.")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestTraceRecorder:
    def test_jsonl_stream_and_memory(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path=str(path)) as recorder:
            with hooks.subscribed(recorder):
                hooks.emit("engine.round", {"phase": "begin", "round": 1})
                hooks.emit("plan.operator", {"op": "join", "out": 3})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [event["kind"] for event in lines] == [
            "engine.round",
            "plan.operator",
        ]
        assert [event["seq"] for event in lines] == [1, 2]
        assert all("ts" in event for event in lines)
        assert recorder.of_kind("plan.operator")[0]["out"] == 3

    def test_keep_false_does_not_accumulate(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceRecorder(path=str(path), keep=False) as recorder:
            recorder("engine.round", {"round": 1})
            assert recorder.events == []
        assert path.read_text().count("\n") == 1


class TestEngineTrace:
    """The acceptance cross-checks: Example 4.1's eight derivation
    steps (Section 4.3) are identifiable in the trace, and per-operator
    cardinalities sum to the engine's ``derived_tuples_per_round``."""

    def _run_traced(self, strategy):
        recorder = TraceRecorder()
        collector = ProfileCollector()
        engine = DeductiveEngine(
            parse_program(PROGRAM), parse_database(EDB), strategy=strategy
        )
        with hooks.subscribed(recorder, collector):
            model = engine.run()
        return recorder, collector, model

    def test_eight_derivation_steps_identifiable(self):
        recorder, _, model = self._run_traced("naive")
        assert model.stats.rounds == 8
        ends = [
            event
            for event in recorder.of_kind("engine.round")
            if event["phase"] == "end"
        ]
        assert [event["round"] for event in ends] == list(range(1, 9))
        assert [event["derived"] for event in ends] == model.stats.derived_tuples_per_round
        run_events = recorder.of_kind("engine.run")
        assert run_events[0]["phase"] == "begin"
        assert run_events[-1]["phase"] == "end"
        assert run_events[-1]["outcome"] == "ok"

    @pytest.mark.parametrize("strategy", ["naive", "semi-naive"])
    def test_operator_cardinalities_sum_to_stats(self, strategy):
        _, collector, model = self._run_traced(strategy)
        per_round = collector.derived_per_round()
        expected = {
            round_no: count
            for round_no, count in enumerate(
                model.stats.derived_tuples_per_round, start=1
            )
        }
        assert set(per_round) <= set(expected)
        for round_no, count in expected.items():
            assert per_round.get(round_no, 0) == count

    def test_operator_rows_have_cardinalities(self):
        _, collector, _ = self._run_traced("semi-naive")
        rows = collector.table()
        assert rows
        for row in rows:
            assert row["op"] in {"join", "anti-join", "carrier", "projection"}
            assert row["invocations"] >= 1
            assert row["output_tuples"] >= 0
            assert row["seconds"] >= 0.0
        assert any(row["variant"].startswith("delta@") for row in rows)

    def test_budget_and_checkpoint_events(self, tmp_path):
        recorder = TraceRecorder()
        engine = DeductiveEngine(
            parse_program(PROGRAM), parse_database(EDB), strategy="naive"
        )
        from repro.runtime.budget import EvaluationBudget

        with hooks.subscribed(recorder):
            engine.run(
                budget=EvaluationBudget(max_rounds=100),
                checkpoint_every=2,
                checkpoint_path=str(tmp_path / "ck.json"),
            )
        charges = recorder.of_kind("budget.charge")
        assert {event["dimension"] for event in charges} >= {
            "rounds",
            "derived",
            "accepted",
        }
        rounds_charged = [e for e in charges if e["dimension"] == "rounds"]
        assert len(rounds_charged) == 8
        writes = recorder.of_kind("checkpoint.write")
        assert writes
        assert all(event["bytes"] > 0 for event in writes)
        assert all(event["duration_s"] >= 0.0 for event in writes)


class TestFrontEndTraces:
    """Every ``--trace``-capable front end speaks the event vocabulary:
    the FO, Datalog1S and Templog evaluators emit ``engine.run`` spans
    (and, for the fixpoint evaluators, per-slice round spans), not just
    ``DeductiveEngine``."""

    def test_fo_evaluate_query_emits_run_span(self):
        from repro.fo import evaluate_query

        db = parse_database(EDB)
        recorder = TraceRecorder()
        with hooks.subscribed(recorder):
            answers = evaluate_query(db, "exists t2 (course(t1, t2; C))")
        assert answers.rows(0, 200)
        runs = recorder.of_kind("engine.run")
        assert [event["phase"] for event in runs] == ["begin", "end"]
        assert runs[0]["strategy"] == "fo"
        assert runs[-1]["outcome"] == "ok"
        assert runs[-1]["duration_s"] >= 0.0

    def test_datalog1s_forward_model_emits_round_per_slice(self):
        from repro.datalog1s import minimal_model, parse_datalog1s

        program = parse_datalog1s(
            "train(5; liege).\ntrain(t + 40; liege) <- train(t; liege).\n"
        )
        recorder = TraceRecorder()
        with hooks.subscribed(recorder):
            model = minimal_model(program)
        assert 45 in model.set_of("train", ("liege",))
        runs = recorder.of_kind("engine.run")
        assert runs[0]["phase"] == "begin"
        assert runs[0]["strategy"] == "datalog1s"
        assert runs[-1]["outcome"] == "ok"
        strata = recorder.of_kind("engine.stratum")
        assert [event["phase"] for event in strata] == ["begin", "end"]
        rounds = recorder.of_kind("engine.round")
        assert rounds, "frontier automaton emitted no round spans"
        # One end span per computed time slice, rounds numbered from 1,
        # each carrying the slice's atom count as derived == accepted.
        assert [event["round"] for event in rounds] == list(
            range(1, len(rounds) + 1)
        )
        assert all(event["phase"] == "end" for event in rounds)
        assert all(event["time_point"] == event["round"] - 1 for event in rounds)
        assert any(event["derived"] > 0 for event in rounds)

    def test_templog_traces_through_the_reduction(self):
        from repro.templog import parse_templog, templog_minimal_model

        program = parse_templog("next^5 go.\nalways (next^40 go <- go).\n")
        recorder = TraceRecorder()
        with hooks.subscribed(recorder):
            templog_minimal_model(program)
        assert recorder.of_kind("engine.run")
        assert recorder.of_kind("engine.round")

    def test_no_events_without_sinks(self):
        from repro.datalog1s import minimal_model, parse_datalog1s

        recorder = TraceRecorder()  # NOT subscribed
        program = parse_datalog1s("train(5; liege).")
        minimal_model(program)
        assert recorder.events == []
