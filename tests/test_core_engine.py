"""Integration tests for the T_GP bottom-up engine (paper Section 4.3).

The centerpiece is the verbatim reproduction of the Example 4.1
computation, plus cross-validation of the closed-form engine against
the ground tuple-at-a-time oracle on bounded windows.
"""

import pytest

from repro.core import DeductiveEngine, GroundEvaluator, parse_program
from repro.core.safety import is_free_extension_safe
from repro.gdb import parse_database
from repro.lrp import Lrp
from repro.util.errors import EvaluationError, GiveUpError

COURSE_EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

PROBLEMS_PROGRAM = """
problems(t1 + 2, t2 + 2; "database") <- course(t1, t2; "database").
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


def run_example_41(**kwargs):
    edb = parse_database(COURSE_EDB)
    program = parse_program(PROBLEMS_PROGRAM)
    return DeductiveEngine(program, edb, **kwargs).run()


class TestExample41:
    """The paper's worked evaluation, asserted in detail."""

    def test_terminates_constraint_safe(self):
        model = run_example_41()
        assert model.stats.constraint_safe
        assert not model.stats.gave_up

    def test_exact_offsets(self):
        # The paper derives offsets 10, 58, 106, 154, 202, 250, 298, 346
        # (+2 for the second column).  Canonically mod 168 that is the
        # 7 residue classes 10 + 24k: the 8th derived tuple (346 ≡ 10)
        # closes the cycle and triggers constraint-safe termination.
        model = run_example_41()
        problems = model.relation("problems")
        offsets = sorted(gt.lrps[0].offset for gt in problems)
        assert offsets == [10, 34, 58, 82, 106, 130, 154]
        assert all(gt.lrps[0].period == 168 for gt in problems)
        assert all(
            gt.lrps[1] == gt.lrps[0].shift(2) for gt in problems
        )

    def test_paper_listed_points(self):
        model = run_example_41()
        problems = model.relation("problems")
        for start in (10, 58, 106, 154, 202, 250, 298, 346):
            assert problems.contains_point((start, start + 2), ("database",))
        # Points not in the schedule:
        assert not problems.contains_point((8, 10), ("database",))
        assert not problems.contains_point((11, 13), ("database",))

    def test_round_count_matches_paper(self):
        # 7 productive rounds (one new tuple each), then a round that
        # derives only covered tuples and stops.
        model = run_example_41(strategy="naive")
        assert model.stats.rounds == 8
        assert model.stats.new_tuples_per_round[-1] == 0
        assert sum(model.stats.new_tuples_per_round) == 7

    def test_trace_matches_paper_sequence(self):
        edb = parse_database(COURSE_EDB)
        program = parse_program(PROBLEMS_PROGRAM)
        engine = DeductiveEngine(program, edb, strategy="naive")
        offsets = []
        for _, fresh in engine.trace():
            for gt in fresh.get("problems", []):
                offsets.append(gt.lrps[0].offset)
        assert offsets == [10, 58, 106, 154, 34, 82, 130]  # mod 168

    def test_agrees_with_ground_oracle(self):
        model = run_example_41()
        edb = parse_database(COURSE_EDB)
        program = parse_program(PROBLEMS_PROGRAM)
        # The temporal domain is Z: derivations may pass through
        # negative times, so the ground window needs slack on both ends.
        ground = GroundEvaluator(program, edb, -600, 900)
        ground.run()
        closed = {
            flat
            for flat in model.relation("problems").extension(0, 900)
            if flat[0] < 500  # interior margin for window truncation
        }
        oracle = {
            flat
            for flat in ground.extension("problems")
            if 0 <= flat[0] < 500
        }
        assert closed == oracle

    def test_free_extension_safety_reached(self):
        model = run_example_41(strategy="naive")
        # Theorem 4.2: free-extension safety holds at the fixpoint.
        edb = parse_database(COURSE_EDB)
        program = parse_program(PROBLEMS_PROGRAM)
        engine = DeductiveEngine(program, edb)
        model = engine.run(check_free_extension_safety=True)
        assert model.stats.free_extension_safe_checked is True


class TestStrategies:
    def test_naive_and_seminaive_agree(self):
        naive = run_example_41(strategy="naive")
        seminaive = run_example_41(strategy="semi-naive")
        assert naive.relation("problems").equivalent(
            seminaive.relation("problems")
        )

    def test_semantic_safety_agrees(self):
        paper = run_example_41(safety="paper")
        semantic = run_example_41(safety="semantic")
        assert paper.relation("problems").equivalent(
            semantic.relation("problems")
        )

    def test_invalid_options(self):
        edb = parse_database(COURSE_EDB)
        program = parse_program(PROBLEMS_PROGRAM)
        with pytest.raises(ValueError):
            DeductiveEngine(program, edb, strategy="magic")
        with pytest.raises(ValueError):
            DeductiveEngine(program, edb, safety="wrong")
        with pytest.raises(ValueError):
            DeductiveEngine(program, edb, on_give_up="explode")


class TestSmallPrograms:
    def test_facts_only(self):
        edb = parse_database("relation dummy[1; 0] {}")
        program = parse_program("p(5). p(7).")
        model = DeductiveEngine(program, edb).run()
        assert model.extension("p", 0, 10) == {(5,), (7,)}

    def test_copy_rule(self):
        edb = parse_database("relation q[1; 0] { (3n+1); }")
        program = parse_program("p(t) <- q(t).")
        model = DeductiveEngine(program, edb).run()
        assert model.relation("p").contains_point((4,))
        assert not model.relation("p").contains_point((5,))

    def test_shift_rule(self):
        edb = parse_database("relation q[1; 0] { (10n); }")
        program = parse_program("p(t + 3) <- q(t).")
        model = DeductiveEngine(program, edb).run()
        assert model.relation("p").tuples[0].lrps == (Lrp(10, 3),)

    def test_predecessor_rule(self):
        edb = parse_database("relation q[1; 0] { (10n); }")
        program = parse_program("p(t - 3) <- q(t).")
        model = DeductiveEngine(program, edb).run()
        assert model.relation("p").contains_point((7,))
        assert model.relation("p").contains_point((-3,))

    def test_join_on_shared_variable(self):
        edb = parse_database(
            """
            relation a[1; 0] { (4n+1); }
            relation b[1; 0] { (6n+3); }
            """
        )
        program = parse_program("both(t) <- a(t), b(t).")
        model = DeductiveEngine(program, edb).run()
        rel = model.relation("both")
        assert rel.contains_point((9,))
        assert not rel.contains_point((1,))
        # CRT: 4n+1 ∩ 6n+3 = 12n+9.
        assert rel.normalize().tuples[0].lrps == (Lrp(12, 9),)

    def test_disjoint_join_is_empty(self):
        edb = parse_database(
            """
            relation a[1; 0] { (4n); }
            relation b[1; 0] { (4n+1); }
            """
        )
        program = parse_program("both(t) <- a(t), b(t).")
        model = DeductiveEngine(program, edb).run()
        assert model.relation("both").is_empty()

    def test_constraint_in_body(self):
        edb = parse_database("relation q[1; 0] { (2n); }")
        program = parse_program("p(t) <- q(t), t >= 0, t < 10.")
        model = DeductiveEngine(program, edb).run()
        assert model.extension("p", -20, 20) == {(0,), (2,), (4,), (6,), (8,)}

    def test_two_temporal_arguments_in_constraint(self):
        edb = parse_database(
            """
            relation leave[1; 0] { (5n) where T1 >= 0; }
            relation arrive[1; 0] { (5n+2) where T1 >= 0; }
            """
        )
        program = parse_program(
            "trip(t, u) <- leave(t), arrive(u), t < u, u <= t + 2."
        )
        model = DeductiveEngine(program, edb).run()
        assert model.relation("trip").contains_point((0, 2))
        assert not model.relation("trip").contains_point((0, 7))

    def test_free_head_variable_denotes_all_of_z(self):
        edb = parse_database("relation q[1; 0] { (7n) where T1 = 0; }")
        program = parse_program("p(t, u) <- q(t).")
        model = DeductiveEngine(program, edb).run()
        rel = model.relation("p")
        assert rel.contains_point((0, -1234))
        assert rel.contains_point((0, 999))
        assert not rel.contains_point((1, 0))

    def test_data_variable_propagation(self):
        edb = parse_database(
            """
            relation q[1; 2] { (2n; "x", "y") where T1 >= 0; }
            """
        )
        program = parse_program("p(t; B, A) <- q(t; A, B).")
        model = DeductiveEngine(program, edb).run()
        assert model.relation("p").contains_point((2,), ("y", "x"))

    def test_data_join(self):
        edb = parse_database(
            """
            relation q[1; 1] { (2n; "x"); (2n; "y"); }
            relation r[1; 1] { (3n; "x"); }
            """
        )
        program = parse_program("p(t; A) <- q(t; A), r(t; A).")
        model = DeductiveEngine(program, edb).run()
        ext = model.extension("p", 0, 13)
        assert ext == {(0, "x"), (6, "x"), (12, "x")}

    def test_repeated_temporal_variable_in_atom(self):
        edb = parse_database("relation q[2; 0] { (2n, 3n); }")
        program = parse_program("diag(t) <- q(t, t).")
        model = DeductiveEngine(program, edb).run()
        # q(t, t) forces t ≡ 0 mod 6.
        assert model.relation("diag").contains_point((6,))
        assert not model.relation("diag").contains_point((2,))
        assert not model.relation("diag").contains_point((3,))


class TestRecursion:
    def test_transitive_shift(self):
        # p(0); p(t+5) <- p(t): an lrp 5n (t >= 0) in the limit; the
        # generalized engine cannot close this from a single point
        # (periods stay 1) and must give up — exactly the situation
        # the paper describes for point-like EDBs.
        edb = parse_database("relation seed[1; 0] { (n) where T1 = 0; }")
        program = parse_program("p(t) <- seed(t). p(t + 5) <- p(t).")
        engine = DeductiveEngine(program, edb, patience=5, on_give_up="partial")
        model = engine.run()
        assert model.stats.gave_up
        # The partial model is still sound: its points are derivable.
        assert model.relation("p").contains_point((0,))
        assert model.relation("p").contains_point((5,))

    def test_periodic_recursion_closes(self):
        # Same rule over a periodic seed closes quickly (Example 4.1
        # pattern): p over 10n, shift by 5 → two residue classes.
        edb = parse_database("relation seed[1; 0] { (10n); }")
        program = parse_program("p(t) <- seed(t). p(t + 5) <- p(t).")
        model = DeductiveEngine(program, edb).run()
        assert model.stats.constraint_safe
        ext = model.extension("p", 0, 20)
        assert ext == {(0,), (5,), (10,), (15,)}

    def test_mutual_recursion(self):
        edb = parse_database("relation seed[1; 0] { (12n); }")
        program = parse_program(
            """
            even(t) <- seed(t).
            odd(t + 3) <- even(t).
            even(t + 3) <- odd(t).
            """
        )
        model = DeductiveEngine(program, edb).run()
        assert model.stats.constraint_safe
        assert model.extension("even", 0, 12) == {(0,), (6,)}
        assert model.extension("odd", 0, 12) == {(3,), (9,)}

    def test_recursion_with_constraints(self):
        edb = parse_database("relation seed[1; 0] { (8n) where T1 >= 0; }")
        program = parse_program(
            """
            p(t) <- seed(t).
            p(t + 2) <- p(t), t >= 0.
            """
        )
        model = DeductiveEngine(program, edb).run()
        assert model.stats.constraint_safe
        ext = model.extension("p", -10, 11)
        assert ext == {(0,), (2,), (4,), (6,), (8,), (10,)}

    def test_cross_validation_random_window(self):
        edb = parse_database(
            """
            relation seed[1; 0] { (6n+1) where T1 >= 0; }
            """
        )
        program = parse_program(
            """
            p(t) <- seed(t).
            p(t + 4) <- p(t).
            """
        )
        model = DeductiveEngine(program, edb).run()
        ground = GroundEvaluator(program, edb, 0, 400)
        ground.run()
        closed = {f for f in model.extension("p", 0, 400) if f[0] < 200}
        oracle = {f for f in ground.extension("p") if f[0] < 200}
        assert closed == oracle


class TestGiveUpPolicy:
    def test_giveup_raises_with_partial_model(self):
        edb = parse_database("relation seed[1; 0] { (n) where T1 = 0; }")
        program = parse_program("p(t) <- seed(t). p(t + 5) <- p(t).")
        engine = DeductiveEngine(program, edb, patience=4)
        with pytest.raises(GiveUpError) as excinfo:
            engine.run()
        error = excinfo.value
        assert error.partial_model is not None
        assert error.stats.gave_up
        assert error.partial_model.relation("p").contains_point((0,))

    def test_max_rounds_cap(self):
        edb = parse_database("relation seed[1; 0] { (n) where T1 = 0; }")
        program = parse_program("p(t) <- seed(t). p(t + 5) <- p(t).")
        engine = DeductiveEngine(
            program, edb, patience=None, max_rounds=7, on_give_up="partial"
        )
        model = engine.run()
        assert model.stats.gave_up
        assert model.stats.rounds == 7


class TestGroundEvaluator:
    def test_window_fixpoint(self):
        edb = parse_database("relation seed[1; 0] { (n) where T1 = 0; }")
        program = parse_program("p(t) <- seed(t). p(t + 5) <- p(t).")
        ground = GroundEvaluator(program, edb, 0, 23)
        stats = ground.run()
        assert ground.extension("p") == {(0,), (5,), (10,), (15,), (20,)}
        assert stats.rounds >= 5

    def test_range_restriction_enforced(self):
        edb = parse_database("relation q[1; 0] { (2n); }")
        program = parse_program("p(t, u) <- q(t).")
        with pytest.raises(EvaluationError):
            GroundEvaluator(program, edb, 0, 10)

    def test_constraints_respected(self):
        edb = parse_database("relation q[1; 0] { (2n); }")
        program = parse_program("p(t) <- q(t), t >= 4, t < 9.")
        ground = GroundEvaluator(program, edb, 0, 20)
        ground.run()
        assert ground.extension("p") == {(4,), (6,), (8,)}

    def test_data_arguments(self):
        edb = parse_database('relation q[1; 1] { (2n; "x") where T1 >= 0; }')
        program = parse_program("p(t; A) <- q(t; A).")
        ground = GroundEvaluator(program, edb, 0, 5)
        ground.run()
        assert ground.extension("p") == {(0, "x"), (2, "x"), (4, "x")}
