"""The durable bi-temporal EDB store: WAL-first commits, transaction
receipts, visibility windows, checkpointing, and end-to-end recovery.

The resilience contract: a fault or crash anywhere inside a commit
leaves either the whole transaction or none of it; reopening the store
replays the log and lands on exactly the committed prefix.
"""

import json
import os

import pytest

from repro.edb import EdbStore, ops_from_json
from repro.gdb.parser import parse_generalized_tuple
from repro.runtime.faults import FaultPlan
from repro.util import hooks
from repro.util.errors import (
    EdbError,
    TransactionError,
    WalCorruptError,
    WalError,
)

COURSE = '(168n+8, 168n+10; "database") where T2 = T1 + 2'
LOGIC = '(168n+20, 168n+22; "logic") where T2 = T1 + 2'


def gt(text, ta=2, da=1):
    return parse_generalized_tuple(text, ta, da)


def declare_course():
    return {
        "op": "declare",
        "relation": "course",
        "temporal_arity": 2,
        "data_arity": 1,
    }


def assert_course(text=COURSE):
    return {"op": "assert", "relation": "course", "tuple": gt(text)}


def retract_course(text=COURSE):
    return {"op": "retract", "relation": "course", "tuple": gt(text)}


def extension(db, name, low, high):
    return sorted(db.relation(name).extension(low, high))


@pytest.fixture
def store(tmp_path):
    handle = EdbStore(str(tmp_path / "store"))
    yield handle
    handle.close()


class TestTransactions:
    def test_receipt_counts(self, store):
        receipt = store.apply([declare_course(), assert_course()])
        assert receipt.tx == 1
        assert (receipt.declared, receipt.asserted, receipt.retracted) == (1, 1, 0)
        assert receipt.wal_bytes > 0
        assert store.head_tx == 1

    def test_idempotent_ops_are_noops(self, store):
        store.apply([declare_course(), assert_course()])
        receipt = store.apply([declare_course(), assert_course()])
        assert receipt.noops == 2
        # Nothing durable happened: the tx counter did not advance.
        assert receipt.tx == 1
        assert store.head_tx == 1

    def test_redeclare_with_other_arity_rejected(self, store):
        store.apply([declare_course()])
        with pytest.raises(TransactionError):
            store.apply(
                [
                    {
                        "op": "declare",
                        "relation": "course",
                        "temporal_arity": 1,
                        "data_arity": 1,
                    }
                ]
            )
        assert store.head_tx == 1

    def test_assert_needs_declared_relation(self, store):
        with pytest.raises(TransactionError):
            store.apply([assert_course()])
        assert store.head_tx == 0

    def test_arity_mismatch_rejected(self, store):
        store.apply([declare_course()])
        with pytest.raises(TransactionError):
            store.apply(
                [{"op": "assert", "relation": "course", "tuple": gt("(n)", 1, 0)}]
            )

    def test_retract_without_live_fact_rejected(self, store):
        store.apply([declare_course()])
        with pytest.raises(TransactionError):
            store.apply([retract_course()])
        assert store.head_tx == 1

    def test_retract_of_same_txn_assert_rejected(self, store):
        store.apply([declare_course()])
        with pytest.raises(TransactionError):
            store.apply([assert_course(), retract_course()])
        # Validation rejected the batch before anything was written.
        assert store.head_tx == 1

    def test_failed_validation_leaves_store_untouched(self, store):
        store.apply([declare_course()])
        with pytest.raises(TransactionError):
            store.apply([assert_course(), {"op": "bogus"}])
        assert extension(store.snapshot(), "course", 0, 200) == []

    def test_transaction_log(self, store):
        store.apply([declare_course(), assert_course()])
        store.apply([assert_course(LOGIC)])
        store.apply([retract_course()])
        log = store.transactions()
        assert [entry["tx"] for entry in log] == [1, 2, 3]
        assert log[0]["declared"] == 1
        assert log[1]["asserted"] == 1
        assert log[2]["retracted"] == 1


class TestVisibility:
    def test_asof_snapshots(self, store):
        store.apply([declare_course(), assert_course()])
        store.apply([assert_course(LOGIC)])
        store.apply([retract_course()])
        at1 = extension(store.snapshot(1), "course", 0, 200)
        at2 = extension(store.snapshot(2), "course", 0, 200)
        at3 = extension(store.snapshot(3), "course", 0, 200)
        assert len(at1) < len(at2)
        assert at3 != at2
        # Retraction hides the fact going forward but not in history.
        assert extension(store.snapshot(2), "course", 0, 200) == at2

    def test_snapshot_excludes_later_declares(self, store):
        store.apply([declare_course(), assert_course()])
        store.apply(
            [
                {
                    "op": "declare",
                    "relation": "late",
                    "temporal_arity": 1,
                    "data_arity": 0,
                }
            ]
        )
        assert "late" not in store.snapshot(1).names()
        assert "late" in store.snapshot(2).names()

    def test_delta_between(self, store):
        store.apply([declare_course(), assert_course()])
        store.apply([assert_course(LOGIC)])
        store.apply([retract_course()])
        inserts, retracts, declares = store.delta_between(1, 3)
        assert [str(t) for t in inserts["course"]] == [str(gt(LOGIC))]
        assert [str(t) for t in retracts["course"]] == [str(gt(COURSE))]
        assert declares is False
        _, _, declares = store.delta_between(0, 1)
        assert declares is True

    def test_delta_cancels_inside_window(self, store):
        store.apply([declare_course(), assert_course()])
        store.apply([assert_course(LOGIC)])
        store.apply([retract_course(LOGIC)])
        inserts, retracts, _ = store.delta_between(1, 3)
        # Born and retracted inside the window: no net change.
        assert inserts == {}
        assert retracts == {}

    def test_reversed_window_rejected(self, store):
        with pytest.raises(EdbError):
            store.delta_between(2, 1)


class TestRecovery:
    def test_reopen_replays_wal(self, tmp_path):
        root = str(tmp_path / "store")
        store = EdbStore(root)
        store.apply([declare_course(), assert_course()])
        store.apply([assert_course(LOGIC)])
        store.apply([retract_course()])
        before = extension(store.snapshot(), "course", 0, 200)
        store.close()
        reopened = EdbStore(root)
        assert reopened.head_tx == 3
        assert extension(reopened.snapshot(), "course", 0, 200) == before
        assert [e["tx"] for e in reopened.transactions()] == [1, 2, 3]
        # History survives too, not just the head state.
        assert extension(reopened.snapshot(2), "course", 0, 200) != before
        reopened.close()

    def test_checkpoint_prunes_and_recovers(self, tmp_path):
        root = str(tmp_path / "store")
        store = EdbStore(root)
        store.apply([declare_course(), assert_course()])
        store.apply([assert_course(LOGIC)])
        before_ckpt = extension(store.snapshot(1), "course", 0, 200)
        store.checkpoint()
        store.apply([retract_course()])
        store.close()
        # Sealed segments below the checkpoint are gone; only the
        # post-checkpoint tail remains to replay.
        segments = os.listdir(os.path.join(root, "wal"))
        assert len(segments) == 1
        reopened = EdbStore(root)
        assert reopened.head_tx == 3
        assert [e["tx"] for e in reopened.transactions()] == [1, 2, 3]
        # As-of history from before the checkpoint is still queryable.
        assert extension(reopened.snapshot(1), "course", 0, 200) == before_ckpt
        reopened.close()

    def test_checkpoint_digest_tamper_detected(self, tmp_path):
        root = str(tmp_path / "store")
        store = EdbStore(root)
        store.apply([declare_course(), assert_course()])
        store.checkpoint()
        store.close()
        path = os.path.join(root, "checkpoint.json")
        with open(path) as handle:
            wrapper = json.load(handle)
        wrapper["payload"] = wrapper["payload"].replace('"tx":1', '"tx":9')
        with open(path, "w") as handle:
            json.dump(wrapper, handle)
        with pytest.raises(EdbError):
            EdbStore(root)

    def test_torn_tail_loses_only_last_txn(self, tmp_path):
        root = str(tmp_path / "store")
        store = EdbStore(root)
        store.apply([declare_course(), assert_course()])
        store.apply([assert_course(LOGIC)])
        store.close()
        wal_dir = os.path.join(root, "wal")
        segment = sorted(os.listdir(wal_dir))[-1]
        path = os.path.join(wal_dir, segment)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 4)  # tear into the final frame
        reopened = EdbStore(root)
        assert reopened.head_tx == 1
        assert extension(reopened.snapshot(), "course", 0, 200) == extension(
            reopened.snapshot(1), "course", 0, 200
        )
        reopened.close()

    def test_out_of_order_wal_refused(self, tmp_path):
        root = str(tmp_path / "store")
        store = EdbStore(root)
        store.apply([declare_course(), assert_course()])
        store.close()
        # Forge a WAL record that skips a transaction id.
        from repro.edb.wal import Wal

        wal = Wal(os.path.join(root, "wal"))
        wal.append({"type": "txn", "tx": 5, "ops": []})
        wal.sync()
        wal.close()
        with pytest.raises(WalCorruptError):
            EdbStore(root)


class TestPoisoning:
    def test_fsync_fault_poisons_handle(self, tmp_path):
        store = EdbStore(str(tmp_path / "store"))
        store.apply([declare_course()])
        plan = FaultPlan.inject("wal_fsync", at=1)
        with plan.installed():
            with pytest.raises(Exception):
                store.apply([assert_course()])
        # The commit may or may not have reached disk: the handle must
        # refuse further writes until a reopen settles the question.
        with pytest.raises(WalError):
            store.apply([assert_course(LOGIC)])
        reopened = EdbStore(store.root)
        assert reopened.head_tx in (1, 2)
        reopened.apply([assert_course(LOGIC)])
        reopened.close()

    def test_append_fault_commits_nothing(self, tmp_path):
        store = EdbStore(str(tmp_path / "store"))
        store.apply([declare_course()])
        plan = FaultPlan.inject("wal_append", at=1)
        with plan.installed():
            with pytest.raises(Exception):
                store.apply([assert_course()])
        reopened = EdbStore(store.root)
        assert reopened.head_tx == 1
        assert extension(reopened.snapshot(), "course", 0, 200) == []
        reopened.close()


class TestEvents:
    def test_txn_and_recover_events(self, tmp_path):
        root = str(tmp_path / "store")
        events = []
        with hooks.subscribed(lambda kind, fields: events.append((kind, fields))):
            store = EdbStore(root)
            store.apply([declare_course(), assert_course()])
            store.close()
            EdbStore(root).close()
        kinds = [kind for kind, _ in events]
        assert kinds.count("edb.recover") == 2
        assert kinds.count("edb.txn") == 1
        txn = next(fields for kind, fields in events if kind == "edb.txn")
        assert txn["tx"] == 1 and txn["asserted"] == 1 and txn["wal_bytes"] > 0
        recover = [fields for kind, fields in events if kind == "edb.recover"]
        assert recover[1]["replayed_txns"] == 1
        assert recover[1]["head_tx"] == 1


class TestOpsFromJson:
    def test_declare_then_assert_same_batch(self, tmp_path):
        store = EdbStore(str(tmp_path / "store"))
        ops = ops_from_json(
            store,
            [
                {
                    "op": "declare",
                    "relation": "course",
                    "temporal_arity": 2,
                    "data_arity": 1,
                },
                {"op": "assert", "relation": "course", "tuple": COURSE},
            ],
        )
        receipt = store.apply(ops)
        assert receipt.asserted == 1
        store.close()

    def test_unknown_relation_rejected(self, tmp_path):
        store = EdbStore(str(tmp_path / "store"))
        with pytest.raises(TransactionError):
            ops_from_json(
                store, [{"op": "assert", "relation": "ghost", "tuple": "(n)"}]
            )
        store.close()

    def test_wrapped_ops_object(self, tmp_path):
        store = EdbStore(str(tmp_path / "store"))
        ops = ops_from_json(store, {"ops": [declare_course()]})
        assert ops[0]["op"] == "declare"
        store.close()
