"""Tests for generalized tuples, the aligned disjunct form, and exact
tuple-level operations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Comparison, ConstraintSystem, TemporalTerm
from repro.gdb import GeneralizedTuple
from repro.lrp import Lrp

WINDOW = 60


def times_in_window(gt, low=-WINDOW, high=WINDOW):
    """Brute-force ground extension of a tuple inside a window."""
    import itertools

    pools = [lrp.enumerate(low, high) for lrp in gt.lrps]
    found = set()
    for times in itertools.product(*pools):
        if gt.constraints.satisfied_by(times):
            found.add(times)
    return found


small_lrps = st.builds(Lrp, st.integers(1, 6), st.integers(0, 5))


@st.composite
def small_tuples(draw, arity=2):
    lrps = tuple(draw(small_lrps) for _ in range(arity))
    n_atoms = draw(st.integers(0, 3))
    atoms = []
    for _ in range(n_atoms):
        op = draw(st.sampled_from(["<", "<=", "=", ">=", ">"]))
        i = draw(st.integers(0, arity - 1))
        j = draw(st.integers(0, arity - 1))
        c = draw(st.integers(-12, 12))
        right = TemporalTerm(j, c) if draw(st.booleans()) else TemporalTerm(None, c)
        atoms.append(Comparison(op, TemporalTerm(i), right))
    constraints = ConstraintSystem.from_atoms(arity, atoms)
    return GeneralizedTuple(lrps, (), constraints)


class TestPaperExamples:
    def test_example_21_train(self):
        # Example 2.1: trains leave at 40n+5 (>= 0), arrive 60 min later.
        train = GeneralizedTuple(
            (Lrp(40, 5), Lrp(40, 65)),
            ("Liege", "Brussels"),
            ConstraintSystem.parse("T1 >= 0 & T2 = T1 + 60", 2),
        )
        assert train.contains_point((5, 65), ("Liege", "Brussels"))
        assert train.contains_point((45, 105), ("Liege", "Brussels"))
        assert not train.contains_point((-35, 25), ("Liege", "Brussels"))
        assert not train.contains_point((5, 66), ("Liege", "Brussels"))
        assert not train.contains_point((5, 65), ("Liege", "Antwerp"))

    def test_generalized_tuple_of_section_21(self):
        # (2n1+3, 2n2+5) with T2 = T1 + 2 represents {…,(-1,1),(1,3),(3,5),…}
        gt = GeneralizedTuple(
            (Lrp(2, 3), Lrp(2, 5)),
            (),
            ConstraintSystem.parse("T2 = T1 + 2", 2),
        )
        for pair in ((-1, 1), (1, 3), (3, 5)):
            assert gt.contains_point(pair)
        assert not gt.contains_point((1, 4))
        assert not gt.contains_point((2, 4))

    def test_example_41_course(self):
        course = GeneralizedTuple(
            (Lrp(168, 8), Lrp(168, 10)),
            ("database",),
            ConstraintSystem.parse("T2 = T1 + 2", 2),
        )
        assert course.contains_point((8, 10), ("database",))
        assert course.contains_point((176, 178), ("database",))
        assert not course.contains_point((8, 12), ("database",))


class TestConstructionAndIdentity:
    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            GeneralizedTuple((Lrp(2, 0),), (), ConstraintSystem.top(2))

    def test_default_constraints_trivial(self):
        gt = GeneralizedTuple((Lrp(2, 0),))
        assert gt.constraints.is_trivial()

    def test_free_extension(self):
        gt = GeneralizedTuple(
            (Lrp(2, 0),), (), ConstraintSystem.parse("T1 >= 0", 1)
        )
        free = gt.free_extension()
        assert free.constraints.is_trivial()
        assert free.contains_point((-4,))
        assert gt.free_signature() == free.free_signature()

    def test_equality_canonical(self):
        a = GeneralizedTuple(
            (Lrp(2, 0),), (), ConstraintSystem.parse("T1 >= 0 & T1 >= -5", 1)
        )
        b = GeneralizedTuple((Lrp(2, 0),), (), ConstraintSystem.parse("T1 >= 0", 1))
        assert a == b and hash(a) == hash(b)

    def test_str_mentions_constraints(self):
        gt = GeneralizedTuple(
            (Lrp(40, 5),), ("x",), ConstraintSystem.parse("T1 >= 0", 1)
        )
        assert "40n+5" in str(gt) and "T1" in str(gt)


class TestAlignedForm:
    def test_congruence_gap_empty(self):
        # T1 ≡ 0 (4), T2 ≡ 2 (4), T1 <= T2 <= T1 + 1: zone non-empty,
        # extension empty — congruences and bounded gaps interact.
        gt = GeneralizedTuple(
            (Lrp(4, 0), Lrp(4, 2)),
            (),
            ConstraintSystem.parse("T1 <= T2 & T2 <= T1 + 1", 2),
        )
        assert gt.constraints.is_satisfiable()
        assert gt.is_empty()
        assert gt.aligned() == []

    def test_congruence_gap_nonempty(self):
        gt = GeneralizedTuple(
            (Lrp(4, 0), Lrp(4, 2)),
            (),
            ConstraintSystem.parse("T1 <= T2 & T2 <= T1 + 2", 2),
        )
        assert not gt.is_empty()
        times, _ = gt.sample()
        assert gt.contains_point(times)

    @given(small_tuples())
    @settings(max_examples=80)
    def test_aligned_preserves_extension(self, gt):
        disjuncts = gt.aligned()
        ground = times_in_window(gt, -30, 30)
        for times in ground:
            hits = [d for d in disjuncts if d.contains_times(times)]
            assert len(hits) == 1  # disjoint cover
        # And nothing extra: every disjunct point in window is in ground.
        for d in disjuncts:
            back = d.to_generalized()
            assert times_in_window(back, -30, 30) <= ground

    @given(small_tuples())
    @settings(max_examples=80)
    def test_aligned_roundtrip(self, gt):
        rebuilt = [d.to_generalized() for d in gt.aligned()]
        ground = times_in_window(gt, -25, 25)
        union = set()
        for r in rebuilt:
            union |= times_in_window(r, -25, 25)
        assert union == ground

    @given(small_tuples())
    @settings(max_examples=60)
    def test_is_empty_matches_enumeration(self, gt):
        # Empty within a generous window implies empty overall only for
        # the implication direction we can check cheaply:
        if not gt.is_empty():
            sample = gt.sample()
            assert sample is not None
            times, data = sample
            assert gt.contains_point(times, data)
        else:
            assert times_in_window(gt, -40, 40) == set()

    def test_alignment_with_explicit_period(self):
        gt = GeneralizedTuple((Lrp(2, 1),))
        disjuncts = gt.aligned(6)
        assert {d.residues for d in disjuncts} == {(1,), (3,), (5,)}

    def test_alignment_rejects_bad_period(self):
        with pytest.raises(ValueError):
            GeneralizedTuple((Lrp(4, 0),)).aligned(6)


class TestTransformations:
    def test_shift_column(self):
        gt = GeneralizedTuple(
            (Lrp(168, 8), Lrp(168, 10)),
            ("database",),
            ConstraintSystem.parse("T2 = T1 + 2", 2),
        )
        shifted = gt.shift_column(0, 2).shift_column(1, 2)
        assert shifted.lrps == (Lrp(168, 10), Lrp(168, 12))
        assert shifted.contains_point((10, 12), ("database",))
        assert not shifted.contains_point((8, 10), ("database",))

    @given(small_tuples(), st.integers(-20, 20))
    @settings(max_examples=60)
    def test_shift_extensional(self, gt, delta):
        shifted = gt.shift_column(0, delta)
        for times in times_in_window(gt, -20, 20):
            moved = (times[0] + delta,) + times[1:]
            assert shifted.contains_point(moved)

    def test_permuted(self):
        gt = GeneralizedTuple(
            (Lrp(4, 1), Lrp(6, 2)), (), ConstraintSystem.parse("T1 < T2", 2)
        )
        swapped = gt.permuted([1, 0])
        assert swapped.lrps == (Lrp(6, 2), Lrp(4, 1))
        # Original contains (1, 2); the swap contains (2, 1).
        assert gt.contains_point((1, 2))
        assert swapped.contains_point((2, 1))
        assert not swapped.contains_point((1, 2))

    def test_product(self):
        a = GeneralizedTuple((Lrp(2, 0),), ("x",), ConstraintSystem.parse("T1 >= 0", 1))
        b = GeneralizedTuple((Lrp(3, 1),), ("y",), ConstraintSystem.parse("T1 < 9", 1))
        ab = a.product(b)
        assert ab.lrps == (Lrp(2, 0), Lrp(3, 1))
        assert ab.data == ("x", "y")
        assert ab.contains_point((4, 7), ("x", "y"))
        assert not ab.contains_point((-2, 7), ("x", "y"))
        assert not ab.contains_point((4, 10), ("x", "y"))


class TestPropagation:
    def test_equality_refines_lrps(self):
        gt = GeneralizedTuple(
            (Lrp(4, 1), Lrp(6, 3)), (), ConstraintSystem.parse("T2 = T1", 2)
        )
        refined = gt.propagate_equalities()
        assert refined is not None
        assert refined.lrps == (Lrp(12, 9), Lrp(12, 9))

    def test_incompatible_equality(self):
        gt = GeneralizedTuple(
            (Lrp(4, 0), Lrp(4, 1)), (), ConstraintSystem.parse("T2 = T1", 2)
        )
        assert gt.propagate_equalities() is None

    def test_pinned_constant_outside_lrp(self):
        gt = GeneralizedTuple(
            (Lrp(4, 0),), (), ConstraintSystem.parse("T1 = 3", 1)
        )
        assert gt.propagate_equalities() is None

    def test_conjoined(self):
        gt = GeneralizedTuple((Lrp(40, 5), Lrp(40, 25)))
        atoms = [Comparison("=", TemporalTerm(1), TemporalTerm(0, 60))]
        refined = gt.conjoined(atoms)
        assert refined is not None
        assert refined.contains_point((5, 65))
        assert not refined.contains_point((5, 66))

    def test_conjoined_unsat(self):
        gt = GeneralizedTuple((Lrp(2, 0),))
        atoms = [
            Comparison("<", TemporalTerm(0), TemporalTerm(None, 0)),
            Comparison(">", TemporalTerm(0), TemporalTerm(None, 0)),
        ]
        assert gt.conjoined(atoms) is None


class TestProjection:
    def test_project_equality_linked(self):
        gt = GeneralizedTuple(
            (Lrp(168, 8), Lrp(168, 10)),
            ("database",),
            ConstraintSystem.parse("T2 = T1 + 2", 2),
        )
        projected = gt.project([1], [0])
        assert len(projected) == 1
        only = projected[0]
        assert only.lrps == (Lrp(168, 10),)
        assert only.contains_point((10,), ("database",))
        assert not only.contains_point((8,), ("database",))

    def test_project_drops_data(self):
        gt = GeneralizedTuple((Lrp(2, 0),), ("x", "y"))
        projected = gt.project([0], [1])
        assert projected[0].data == ("y",)

    def test_project_unconstrained_column(self):
        gt = GeneralizedTuple((Lrp(5, 2), Lrp(3, 1)))
        projected = gt.project([0], [])
        assert len(projected) == 1
        assert projected[0].lrps == (Lrp(5, 2),)

    def test_project_congruence_window(self):
        # Dropping T2 with period 4 under 0 <= T2 - T1 <= 1 must keep
        # only the T1 values with a residue-compatible witness.
        gt = GeneralizedTuple(
            (Lrp(1, 0), Lrp(4, 2)),
            (),
            ConstraintSystem.parse("T1 <= T2 & T2 <= T1 + 1", 2),
        )
        pieces = gt.project([0], [])
        kept = set()
        for piece in pieces:
            kept |= {t[0] for t in times_in_window(piece, -20, 20)}
        # T1 = t feasible iff some T2 in {t, t+1} is ≡ 2 mod 4.
        expected = {
            t
            for t in range(-20, 20)
            if any((u - 2) % 4 == 0 for u in (t, t + 1))
        }
        assert kept == expected

    @given(small_tuples())
    @settings(max_examples=60)
    def test_projection_extensional(self, gt):
        pieces = gt.project([0], [])
        shadow = {(t[0],) for t in times_in_window(gt, -25, 25)}
        covered = set()
        for piece in pieces:
            covered |= times_in_window(piece, -25, 25)
        # Every shadow point is covered (witness may live outside the
        # window, so covered may be larger near the edges — check the
        # inner region both ways).
        assert shadow <= covered
        inner = {
            (t,)
            for (t,) in covered
            if -10 <= t < 10
        }
        wide_shadow = {(t[0],) for t in times_in_window(gt, -60, 60)}
        assert inner <= wide_shadow

    def test_project_reorder(self):
        gt = GeneralizedTuple(
            (Lrp(2, 0), Lrp(3, 1), Lrp(5, 2)),
            (),
            ConstraintSystem.parse("T1 < T2 & T2 < T3", 3),
        )
        pieces = gt.project([2, 0], [])
        ground = times_in_window(gt, -10, 15)
        expected = {(t3, t1) for (t1, t2, t3) in ground}
        covered = set()
        for piece in pieces:
            covered |= times_in_window(piece, -10, 15)
        assert expected <= covered


class TestContainmentAndDifference:
    def test_contains_tuple_basic(self):
        wide = GeneralizedTuple((Lrp(2, 0),), (), ConstraintSystem.top(1))
        narrow = GeneralizedTuple(
            (Lrp(4, 2),), (), ConstraintSystem.parse("T1 >= 0", 1)
        )
        assert wide.contains_tuple(narrow)
        assert not narrow.contains_tuple(wide)

    def test_contains_tuple_data_mismatch(self):
        a = GeneralizedTuple((Lrp(2, 0),), ("x",))
        b = GeneralizedTuple((Lrp(2, 0),), ("y",))
        assert not a.contains_tuple(b)

    @given(small_tuples(), small_tuples())
    @settings(max_examples=40)
    def test_contains_tuple_extensional(self, a, b):
        if a.contains_tuple(b):
            assert times_in_window(b, -24, 24) <= times_in_window(a, -24, 24)

    def test_subtract(self):
        whole = GeneralizedTuple(
            (Lrp(2, 0),), (), ConstraintSystem.parse("T1 >= 0 & T1 < 20", 1)
        )
        hole = GeneralizedTuple(
            (Lrp(2, 0),), (), ConstraintSystem.parse("T1 >= 6 & T1 < 10", 1)
        )
        pieces = whole.subtract([hole])
        covered = set()
        for piece in pieces:
            covered |= {t[0] for t in times_in_window(piece, -5, 30)}
        assert covered == {0, 2, 4, 10, 12, 14, 16, 18}

    def test_subtract_different_residues(self):
        evens = GeneralizedTuple((Lrp(2, 0),))
        odds = GeneralizedTuple((Lrp(2, 1),))
        pieces = evens.subtract([odds])
        covered = set()
        for piece in pieces:
            covered |= {t[0] for t in times_in_window(piece, -6, 6)}
        assert covered == {-6, -4, -2, 0, 2, 4}

    @given(small_tuples(), small_tuples())
    @settings(max_examples=40)
    def test_subtract_extensional(self, a, b):
        pieces = a.subtract([b])
        expected = times_in_window(a, -24, 24) - times_in_window(b, -24, 24)
        covered = set()
        for piece in pieces:
            covered |= times_in_window(piece, -24, 24)
        assert covered == expected
