"""The supervised worker pool: admission control, worker supervision,
retry with checkpoint resume, both rungs of the degradation ladder,
and the circuit breaker — all driven by deterministic fault plans."""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.runtime.faults import FaultPlan, TransientFaultError
from repro.service import JobSpec, QueryService, RetryPolicy
from repro.service.breaker import CircuitBreaker
from repro.util.errors import (
    CircuitOpenError,
    OverloadedError,
    WorkerDiedError,
)

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)


class FakeClock:
    """Injectable breaker clock so cooldown tests never sleep."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def run_spec(job_id="job", **kwargs):
    return JobSpec(job_id, "run", program=PROGRAM, edb=EDB, **kwargs)


def service(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("default_deadline", 30.0)
    return QueryService(**kwargs)


@pytest.fixture
def baseline_model():
    return DeductiveEngine(parse_program(PROGRAM), parse_database(EDB)).run()


class TestSpecs:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            JobSpec("x", "nonsense")
        with pytest.raises(ValueError):
            JobSpec("", "run")

    def test_program_key_identifies_sources(self):
        assert run_spec("a").program_key() == run_spec("b").program_key()
        other = JobSpec("c", "run", program="p(t) <- q(t).", edb=EDB)
        assert other.program_key() != run_spec("a").program_key()

    def test_from_json_dict(self):
        spec = JobSpec.from_json_dict(
            {"kind": "query", "edb": EDB, "query": "course(t1, t2; C)",
             "deadline_seconds": 5, "window": [0, 60]},
            default_id="job-9",
        )
        assert spec.job_id == "job-9"
        assert spec.deadline_seconds == 5
        assert spec.window == (0, 60)

    def test_result_report_fields(self):
        with service() as svc:
            result = svc.run_batch([run_spec()])[0]
        report = result.to_json_dict()
        for key in ("job_id", "state", "outcome", "attempts", "backend",
                    "degradation", "resumed", "worker", "error", "stats",
                    "model"):
            assert key in report
        assert report["state"] == "ok"
        assert report["attempts"] == 1
        assert report["backend"] == "compiled"


class TestAdmission:
    def test_bounded_queue_sheds_typed(self):
        with QueryService(workers=0, queue_limit=2) as svc:
            svc.submit(run_spec("a"))
            svc.submit(run_spec("b"))
            with pytest.raises(OverloadedError) as info:
                svc.submit(run_spec("c"))
            assert info.value.queue_limit == 2
            assert svc.stats()["jobs"]["shed"] == 1

    def test_run_batch_converts_shedding_to_rejected_results(self):
        with QueryService(workers=0, queue_limit=1) as svc:
            results = svc.run_batch(
                [run_spec("a", deadline_seconds=0.0), run_spec("b")],
                timeout=0.2,
            )
        assert results[1].state == "rejected"
        assert results[1].outcome == "overloaded"

    def test_rejection_counters_agree_across_front_doors(self):
        # Pre-PR regression: direct submit() bumped shed/
        # breaker_rejections but never "rejected", so the serve front
        # door and run_batch disagreed on the same event.
        with QueryService(workers=0, queue_limit=1) as svc:
            svc.submit(run_spec("a"))
            with pytest.raises(OverloadedError):
                svc.submit(run_spec("direct"))
            direct = svc.stats()["jobs"]
        assert direct["shed"] == 1
        assert direct["rejected"] == 1

        with QueryService(workers=0, queue_limit=1) as svc:
            results = svc.run_batch(
                [run_spec("a", deadline_seconds=0.0), run_spec("b")],
                timeout=0.2,
            )
            batch = svc.stats()["jobs"]
        assert results[1].state == "rejected"
        assert batch["shed"] == 1
        assert batch["rejected"] == 1  # counted once, not re-counted by run_batch

    def test_submit_fault_site_is_typed_and_batch_safe(self):
        plan = FaultPlan.inject("submit", at=1, error=TransientFaultError)
        with plan.installed():
            with service() as svc:
                results = svc.run_batch([run_spec("a"), run_spec("b")])
        assert results[0].state == "rejected"
        assert results[1].state == "ok"


class TestDeadlines:
    def test_expired_job_degrades_to_typed_partial(self):
        with service() as svc:
            result = svc.run_batch([run_spec(deadline_seconds=0.0)])[0]
        assert result.state == "partial"
        assert result.outcome == "budget-exceeded"
        assert "partial-model" in result.degradation

    def test_deadline_mid_run_returns_partial_model(self):
        # A round-boundary delay longer than the deadline forces the
        # engine budget to trip after round 1 committed real tuples.
        plan = FaultPlan.delay("round", at=2, seconds=0.15)
        with plan.installed():
            with service() as svc:
                result = svc.run_batch([run_spec(deadline_seconds=0.1)])[0]
        assert result.state == "partial"
        assert result.outcome == "budget-exceeded"
        assert "partial-model" in result.degradation
        assert result.model is not None
        assert result.stats["rounds"] >= 1

    def test_queued_jobs_expire_without_workers_touching_them(self):
        # One worker is pinned by a slow job; the queued job's deadline
        # elapses before any worker frees up — the supervisor resolves
        # it instead of leaving it hanging.
        plan = FaultPlan.delay("round", at=1, seconds=0.3)
        with plan.installed():
            with service(default_deadline=1.0) as svc:
                slow = svc.submit(run_spec("slow"))
                fast = svc.submit(run_spec("fast", deadline_seconds=0.05))
                result = fast.result(timeout=5.0)
                assert result.state == "partial"
                assert result.outcome == "budget-exceeded"
                assert slow.result(timeout=10.0).state in ("ok", "partial")


class TestRetryAndResume:
    def test_transient_clause_fault_retries_and_resumes(self, baseline_model):
        plan = FaultPlan.inject("clause", at=4, error=TransientFaultError)
        with plan.installed():
            with service() as svc:
                result = svc.run_batch([run_spec()])[0]
        assert result.state == "ok"
        assert result.attempts == 2
        assert result.resumed is True
        assert result.stats["resumed_from_round"] >= 1
        assert result.model.equivalent(baseline_model)

    def test_result_return_fault_is_retried(self, baseline_model):
        plan = FaultPlan.inject("result_return", at=1, error=TransientFaultError)
        with plan.installed():
            with service() as svc:
                result = svc.run_batch([run_spec()])[0]
        assert result.state == "ok"
        assert result.attempts == 2
        assert result.resumed is True
        assert result.model.equivalent(baseline_model)

    def test_exhausted_retries_fail_terminally(self):
        plan = FaultPlan.inject(
            "clause", at=1, error=TransientFaultError, repeat=True
        )
        with plan.installed():
            with service() as svc:
                result = svc.run_batch([run_spec()])[0]
        assert result.state == "failed"
        assert result.attempts == FAST_RETRY.max_attempts


class TestSupervision:
    def test_worker_death_requeues_and_restarts(self, baseline_model):
        plan = FaultPlan.inject("worker_start", at=1, error=WorkerDiedError)
        with plan.installed():
            with service() as svc:
                result = svc.run_batch([run_spec()])[0]
                stats = svc.stats()
        assert result.state == "ok"
        assert result.attempts == 2
        assert result.worker != "worker-1"  # excluded dead worker
        assert stats["workers"]["restarts"] >= 1
        assert stats["jobs"]["requeues"] >= 1
        assert result.model.equivalent(baseline_model)

    def test_repeated_deaths_exhaust_attempts(self):
        plan = FaultPlan.inject(
            "worker_start", at=1, error=WorkerDiedError, repeat=True
        )
        with plan.installed():
            with service(default_deadline=5.0) as svc:
                result = svc.run_batch([run_spec()], timeout=30.0)[0]
        assert result.state in ("failed", "partial")
        assert result.terminal()


class TestDegradationLadder:
    def test_compiled_crash_degrades_to_reference(self, baseline_model):
        # A permanent (non-transient) crash in the compiled evaluator:
        # rung one retries the job on the reference backend, which does
        # not hit the already-consumed fault.
        plan = FaultPlan.inject("clause", at=1, error=RuntimeError)
        with plan.installed():
            with service() as svc:
                result = svc.run_batch([run_spec()])[0]
        assert result.state == "ok"
        assert result.backend == "reference"
        assert "reference-backend" in result.degradation
        assert result.model.equivalent(baseline_model)

    def test_parse_error_fails_fast_without_degrading(self):
        spec = JobSpec("bad", "run", program="this is not a program", edb=EDB)
        with service() as svc:
            result = svc.run_batch([spec])[0]
        assert result.state == "failed"
        assert result.attempts == 1
        assert result.degradation == []


class TestCircuitBreaker:
    def test_terminal_failures_open_the_circuit(self):
        bad = JobSpec("bad-1", "run", program="not a program", edb=EDB)
        bad2 = JobSpec("bad-2", "run", program="not a program", edb=EDB)
        with service(
            breaker=CircuitBreaker(failure_threshold=1, cooldown_seconds=60.0)
        ) as svc:
            first = svc.run_batch([bad])[0]
            assert first.state == "failed"
            with pytest.raises(CircuitOpenError):
                svc.submit(bad2)
            assert svc.stats()["jobs"]["breaker_rejections"] == 1
            assert svc.health()["status"] == "degraded"
            assert svc.health()["open_circuits"]

    def test_breaker_closes_after_cooldown_when_program_recovers(self):
        # The service-path regression: the probe claimed at submit time
        # must survive the worker-side re-check — a probe that rejects
        # itself would wedge the breaker half-open forever.
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=60.0, clock=clock
        )
        plan = FaultPlan.inject(
            "clause", at=1, error=TransientFaultError, repeat=True
        )
        with service(breaker=breaker) as svc:
            with plan.installed():
                sick = svc.run_batch([run_spec("sick")], timeout=30.0)[0]
            assert sick.state == "failed"
            with pytest.raises(CircuitOpenError):
                svc.submit(run_spec("rejected-while-open"))
            clock.advance(61.0)
            probe = svc.run_batch([run_spec("probe")], timeout=30.0)[0]
            assert probe.state == "ok"
            key = run_spec("x").program_key()
            assert svc.breaker.state(key) == "closed"
            assert svc.run_batch([run_spec("after")])[0].state == "ok"

    def test_queued_expiry_does_not_reset_breaker_failures(self):
        # A job that expires while still queued (attempts == 0) says
        # nothing about its program's health; recording it as a breaker
        # success would reset the consecutive-failure count.
        key = run_spec("x").program_key()
        pinning = JobSpec(
            "pinning", "run", program=PROGRAM + "\n", edb=EDB
        )  # distinct program text -> its own breaker key
        plan = FaultPlan.delay("round", at=1, seconds=0.3)
        with plan.installed():
            with service(
                default_deadline=5.0,
                breaker=CircuitBreaker(
                    failure_threshold=2, cooldown_seconds=60.0
                ),
            ) as svc:
                svc.breaker.record_failure(key)
                slow = svc.submit(pinning)
                fast = svc.submit(run_spec("fast", deadline_seconds=0.05))
                result = fast.result(timeout=5.0)
                assert result.state == "partial"
                assert result.attempts == 0
                svc.breaker.record_failure(key)
                assert svc.breaker.state(key) == "open"
                slow.result(timeout=10.0)

    def test_queued_job_rejected_when_circuit_opens_mid_flight(self):
        bad = [
            JobSpec("bad-%d" % i, "run", program="not a program", edb=EDB)
            for i in range(2)
        ]
        with service(
            breaker=CircuitBreaker(failure_threshold=1, cooldown_seconds=60.0)
        ) as svc:
            results = svc.run_batch(bad, timeout=30.0)
        assert results[0].state in ("failed", "rejected")
        assert results[1].state == "rejected"
        assert "circuit-open" in (results[0].outcome, results[1].outcome) or (
            results[1].outcome in ("circuit-open", "overloaded")
        )


class TestObservability:
    def test_stats_and_health_snapshot(self):
        with service(workers=2) as svc:
            results = svc.run_batch([run_spec("s%d" % i) for i in range(5)])
            stats = svc.stats()
            health = svc.health()
        assert all(result.state == "ok" for result in results)
        assert stats["jobs"]["submitted"] == 5
        assert stats["jobs"]["completed"] == 5
        assert stats["jobs"]["ok"] == 5
        assert stats["queue"]["limit"] == 64
        assert health["status"] == "ok"
        assert health["open_circuits"] == []

    def test_mixed_kinds_in_one_batch(self):
        specs = [
            run_spec("r"),
            JobSpec("q", "query", edb=EDB, query="exists t2 (course(t1, t2; C))"),
            JobSpec("d", "datalog1s",
                    program="train(5; a).\ntrain(t + 40; a) <- train(t; a).\n"),
            JobSpec("t", "templog",
                    program="next^5 go.\nalways (next^40 go <- go).\n"),
        ]
        with service(workers=2) as svc:
            results = svc.run_batch(specs)
        assert [r.state for r in results] == ["ok"] * 4
        assert [r.backend for r in results] == [
            "compiled", "fo", "closed-form", "closed-form"
        ]


class TestMaintainJobs:
    """``maintain`` jobs: the service refreshes a process-cached
    materialized model over a durable EDB store instead of evaluating
    inline sources."""

    def _store(self, tmp_path):
        from repro.edb import EdbStore
        from repro.gdb.parser import parse_generalized_tuple

        store = EdbStore(str(tmp_path / "store"))
        store.apply(
            [
                {
                    "op": "declare",
                    "relation": "course",
                    "temporal_arity": 2,
                    "data_arity": 1,
                },
                {
                    "op": "assert",
                    "relation": "course",
                    "tuple": parse_generalized_tuple(
                        '(168n+8, 168n+10; "database") where T2 = T1 + 2', 2, 1
                    ),
                },
            ]
        )
        return store

    def test_spec_requires_store(self):
        with pytest.raises(ValueError):
            JobSpec("m", "maintain", program=PROGRAM)

    def test_store_changes_program_key(self):
        a = JobSpec("m", "maintain", program=PROGRAM, store="/x")
        b = JobSpec("m", "maintain", program=PROGRAM, store="/y")
        assert a.program_key() != b.program_key()

    def test_maintain_job_tracks_commits(self, tmp_path, baseline_model):
        from repro.edb import MAINTAINERS
        from repro.gdb.parser import parse_generalized_tuple

        store = self._store(tmp_path)
        spec = JobSpec(
            "m1", "maintain", program=PROGRAM, store=store.root,
            window=(0, 200),
        )
        with service(workers=2) as svc:
            first = svc.run_batch([spec])[0]
            assert first.state == "ok"
            assert first.backend == "compiled"
            store.apply(
                [
                    {
                        "op": "assert",
                        "relation": "course",
                        "tuple": parse_generalized_tuple(
                            '(168n+20, 168n+22; "logic") where T2 = T1 + 2',
                            2,
                            1,
                        ),
                    }
                ]
            )
            second = svc.run_batch(
                [JobSpec("m2", "maintain", program=PROGRAM, store=store.root,
                         window=(0, 200))]
            )[0]
        store.close()
        assert second.state == "ok"
        maintainer = MAINTAINERS.get(store.root, PROGRAM)
        assert maintainer.tx == 2
        assert maintainer.last_report.recomputed is False
        assert maintainer.last_report.inserted == 1
        # The first job's window answers are the baseline's; the second
        # job's include the new chain too.
        first_problems = first.model.relation("problems")
        assert first_problems.equivalent(baseline_model.relation("problems"))
        assert not second.model.relation("problems").equivalent(first_problems)

    def test_maintain_results_report_model_window(self, tmp_path):
        store = self._store(tmp_path)
        store.close()
        spec = JobSpec(
            "m", "maintain", program=PROGRAM, store=store.root, window=(0, 60)
        )
        with service(workers=1) as svc:
            result = svc.run_batch([spec])[0]
        assert result.state == "ok"
        assert result.stats["rounds"] >= 1
        assert result.model_text
