"""Tests for ConstraintSystem and the constraint atom front end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Comparison, ConstraintSystem, TemporalTerm
from repro.constraints.atoms import parse_constraint_text
from repro.constraints.simplify import disjoint_cover, prune_covered
from repro.util.errors import ParseError


def system_from(text, arity=2):
    return ConstraintSystem.parse(text, arity)


class TestParsing:
    def test_paper_train_constraint(self):
        # Example 2.1: "T1 >= 0 & T2 = T1 + 60"
        cs = system_from("T1 >= 0 & T2 = T1 + 60")
        assert cs.satisfied_by((5, 65))
        assert not cs.satisfied_by((-1, 59))
        assert not cs.satisfied_by((5, 64))

    def test_all_atom_forms(self):
        # The grammar of Section 2.1 constraints.
        forms = [
            "T1 < T2 + 3",
            "T1 < T2 - 3",
            "T1 = T2 + 3",
            "T1 = T2 - 3",
            "T1 < 3",
            "T1 = 3",
            "3 < T1",
        ]
        for text in forms:
            cs = ConstraintSystem.parse(text, 2)
            assert isinstance(cs, ConstraintSystem)

    def test_unknown_variable(self):
        with pytest.raises(ParseError):
            ConstraintSystem.parse("T9 = 0", 2)

    def test_garbage(self):
        with pytest.raises(ParseError):
            ConstraintSystem.parse("T1 = = 3", 2)

    def test_empty_text_is_top(self):
        assert ConstraintSystem.parse("", 2).is_trivial()

    def test_separators(self):
        for text in ("T1 = 0, T2 = 1", "T1 = 0 & T2 = 1", "T1 = 0 and T2 = 1"):
            cs = ConstraintSystem.parse(text, 2)
            assert cs.satisfied_by((0, 1))
            assert not cs.satisfied_by((1, 0))

    def test_negative_constants(self):
        cs = ConstraintSystem.parse("T1 = -5", 1)
        assert cs.satisfied_by((-5,))
        cs2 = ConstraintSystem.parse("T1 < T2 - 3", 2)
        assert cs2.satisfied_by((0, 4))
        assert not cs2.satisfied_by((0, 3))


class TestAtomLowering:
    def test_strict_tightens(self):
        lt = Comparison("<", TemporalTerm(0), TemporalTerm(1))
        assert lt.to_bounds() == [(1, 2, -1)]

    def test_equality_two_bounds(self):
        eq = Comparison("=", TemporalTerm(0), TemporalTerm(1, 60))
        assert sorted(eq.to_bounds()) == [(1, 2, 60), (2, 1, -60)]

    def test_constant_side(self):
        atom = Comparison(">", TemporalTerm(None, 3), TemporalTerm(0))
        # 3 > T1 → T1 - 0 <= 2
        assert atom.to_bounds() == [(1, 0, 2)]

    def test_ne_not_convex(self):
        ne = Comparison("!=", TemporalTerm(0), TemporalTerm(1))
        assert not ne.is_convex()
        with pytest.raises(ValueError):
            ne.to_bounds()

    def test_negated(self):
        eq = Comparison("=", TemporalTerm(0), TemporalTerm(1))
        ops = sorted(a.op for a in eq.negated())
        assert ops == ["<", ">"]

    def test_flipped(self):
        atom = Comparison("<", TemporalTerm(0), TemporalTerm(1))
        assert atom.flipped() == Comparison(">", TemporalTerm(1), TemporalTerm(0))


class TestSystemAlgebra:
    def test_conjoin(self):
        a = system_from("T1 >= 0")
        b = system_from("T1 < 10")
        both = a.conjoin(b)
        assert both.satisfied_by((5, 0))
        assert not both.satisfied_by((10, 0))

    def test_bottom(self):
        assert not ConstraintSystem.bottom(2).is_satisfiable()

    def test_project_out(self):
        cs = system_from("T1 >= 0 & T2 = T1 + 60")
        only_t2 = cs.project_out(0)
        assert only_t2.arity == 1
        assert only_t2.satisfied_by((60,))
        assert not only_t2.satisfied_by((59,))

    def test_shift_column(self):
        cs = system_from("T2 = T1 + 2")
        shifted = cs.shift_column(0, 48).shift_column(1, 48)
        # Both columns moved by 48: relation preserved.
        assert shifted == cs

    def test_shift_column_single(self):
        cs = system_from("T2 = T1")
        shifted = cs.shift_column(1, 60)
        assert shifted == system_from("T2 = T1 + 60")

    def test_remapped(self):
        cs = ConstraintSystem.parse("T1 < T2", 2)
        wide = cs.remapped({0: 2, 1: 0}, 3)
        # old T1 -> new T3, old T2 -> new T1
        assert wide.satisfied_by((5, 99, 1))
        assert not wide.satisfied_by((1, 99, 5))

    def test_implies(self):
        narrow = system_from("T1 = 5")
        wide = system_from("T1 >= 0")
        assert narrow.implies(wide)
        assert not wide.implies(narrow)

    def test_implied_by_union(self):
        # 0 <= T1 <= 10 is covered by T1 <= 5 union T1 >= 6.
        whole = ConstraintSystem.parse("T1 >= 0 & T1 < 11", 1)
        left = ConstraintSystem.parse("T1 < 6", 1)
        right = ConstraintSystem.parse("T1 >= 6", 1)
        assert whole.implied_by_union([left, right])
        assert not whole.implied_by_union([left])

    def test_minus(self):
        whole = ConstraintSystem.parse("T1 >= 0 & T1 < 11", 1)
        hole = ConstraintSystem.parse("T1 >= 3 & T1 < 8", 1)
        pieces = whole.minus(hole)
        values = set()
        for piece in pieces:
            values |= {t for t in range(-5, 20) if piece.satisfied_by((t,))}
        assert values == {0, 1, 2, 8, 9, 10}

    def test_equal_to_constant(self):
        cs = ConstraintSystem.equal_to_constant(2, 1, 7)
        assert cs.satisfied_by((0, 7))
        assert not cs.satisfied_by((0, 8))

    def test_column_interval(self):
        cs = ConstraintSystem.parse("T1 >= 2 & T1 < 9", 1)
        assert cs.column_interval(0) == (2, 8)


class TestDisplay:
    def test_str_roundtrip(self):
        cs = system_from("T1 >= 0 & T2 = T1 + 60")
        again = ConstraintSystem.parse(str(cs), 2)
        assert again == cs

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["<", "<=", "=", ">", ">="]),
                st.integers(0, 2),
                st.integers(0, 2),
                st.integers(-10, 10),
            ),
            max_size=4,
        )
    )
    @settings(max_examples=80)
    def test_str_roundtrip_random(self, atom_specs):
        atoms = [
            Comparison(op, TemporalTerm(i), TemporalTerm(j, c))
            for (op, i, j, c) in atom_specs
        ]
        cs = ConstraintSystem.from_atoms(3, atoms)
        if cs.is_satisfiable():
            assert ConstraintSystem.parse(str(cs), 3) == cs


class TestSimplify:
    def test_prune_covered(self):
        whole = ConstraintSystem.parse("T1 >= 0 & T1 < 11", 1)
        sub = ConstraintSystem.parse("T1 >= 3 & T1 < 8", 1)
        kept = prune_covered([whole, sub])
        assert kept == [whole]

    def test_prune_keeps_needed(self):
        left = ConstraintSystem.parse("T1 < 6", 1)
        right = ConstraintSystem.parse("T1 >= 6", 1)
        assert sorted(map(str, prune_covered([left, right]))) == sorted(
            map(str, [left, right])
        )

    def test_disjoint_cover(self):
        a = ConstraintSystem.parse("T1 >= 0 & T1 < 10", 1)
        b = ConstraintSystem.parse("T1 >= 5 & T1 < 15", 1)
        cover = disjoint_cover([a, b])
        counts = {}
        for t in range(-3, 20):
            counts[t] = sum(piece.satisfied_by((t,)) for piece in cover)
        for t in range(0, 15):
            assert counts[t] == 1
        for t in (-1, 15, 16):
            assert counts[t] == 0
