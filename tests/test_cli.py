"""Tests for the command-line interface."""

import io
import json
import os

import pytest

from repro.cli import main

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
relation seed[1; 0] { (n) where T1 = 0; }
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

DIVERGING = """
p(t) <- seed(t).
p(t + 5) <- p(t).
"""

D1S = """
train(5; liege).
train(t + 40; liege) <- train(t; liege).
"""

TEMPLOG = """
next^5 go.
always (next^40 go <- go).
"""


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, text in (
        ("edb.gdb", EDB),
        ("program.dtl", PROGRAM),
        ("diverge.dtl", DIVERGING),
        ("trains.d1s", D1S),
        ("monitor.tlg", TEMPLOG),
    ):
        path = tmp_path / name
        path.write_text(text)
        paths[name] = str(path)
    return paths


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRun:
    def test_closed_form(self, files):
        code, output = run_cli(
            ["run", files["program.dtl"], "--edb", files["edb.gdb"]]
        )
        assert code == 0
        assert "constraint safe: True" in output
        assert "168n+10" in output

    def test_window(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--window",
                "0",
                "60",
            ]
        )
        assert code == 0
        assert "(10, 12, 'database')" in output

    def test_predicate_filter(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--predicate",
                "problems",
            ]
        )
        assert code == 0
        assert output.count("problems [") == 1

    def test_give_up_exit_code(self, files):
        code, _ = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--patience",
                "3",
            ]
        )
        assert code == 3

    def test_give_up_partial(self, files):
        code, output = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--patience",
                "3",
                "--partial",
            ]
        )
        assert code == 3
        assert "gave up" in output


class TestStatsAndVerify:
    def test_stats_flag(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--stats",
            ]
        )
        assert code == 0
        assert "free signatures" in output

    def test_verify_flag(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--verify",
                "--window",
                "0",
                "300",
            ]
        )
        assert code == 0
        assert "model verified" in output


class TestOtherCommands:
    def test_query(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                'exists t2 (course(t1, t2; "database"))',
            ]
        )
        assert code == 0
        assert "168n+8" in output

    def test_query_truth_value(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                'exists t1, t2 (course(t1, t2; "database"))',
            ]
        )
        assert code == 0
        assert "truth value: True" in output

    def test_datalog1s(self, files):
        code, output = run_cli(["datalog1s", files["trains.d1s"]])
        assert code == 0
        assert "40n+5" in output

    def test_templog(self, files):
        code, output = run_cli(["templog", files["monitor.tlg"]])
        assert code == 0
        assert "40n+5" in output

    def test_explain(self, files):
        code, output = run_cli(
            ["explain", files["program.dtl"], "--edb", files["edb.gdb"]]
        )
        assert code == 0
        # One block per clause, every variant rendered, fingerprint last.
        assert output.count("clause:") == 2
        assert "plan naive:" in output
        assert "plan semi-naive, delta @ body position 0:" in output
        assert "scan course" in output
        assert "plan fingerprint:" in output

    def test_explain_json(self, files):
        code, output = run_cli(
            ["explain", files["program.dtl"], "--edb", files["edb.gdb"], "--json"]
        )
        assert code == 0
        report = json.loads(output)
        assert report["command"] == "explain"
        assert len(report["plan_fingerprint"]) == 64
        assert "scan" in report["plans"]

    def test_parse_error_exit_code(self, files, tmp_path):
        bad = tmp_path / "bad.dtl"
        bad.write_text("p(t <-")
        code, _ = run_cli(["run", str(bad), "--edb", files["edb.gdb"]])
        assert code == 2

    def test_missing_file(self, files, capsys):
        code, _ = run_cli(["run", "/no/such/file", "--edb", files["edb.gdb"]])
        assert code == 2
        captured = capsys.readouterr()
        assert "cannot read /no/such/file" in captured.err
        assert len(captured.err.strip().splitlines()) == 1


class TestRuntimeFlags:
    def test_json_report(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--json",
                "--window",
                "0",
                "60",
            ]
        )
        assert code == 0
        report = json.loads(output)
        assert report["outcome"] == "ok"
        assert report["exit_code"] == 0
        assert report["stats"]["constraint_safe"] is True
        assert report["stats"]["rounds"] > 0
        summary = report["model"]["predicates"]["problems"]
        assert summary["generalized_tuples"] >= 1
        assert summary["window"]["tuples"]

    def test_budget_exit_code_and_partial_json(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--deadline",
                "0",
                "--json",
            ]
        )
        assert code == 4
        report = json.loads(output)
        assert report["outcome"] == "budget-exceeded"
        assert report["error"]["type"] == "BudgetExceededError"
        assert report["error"]["limit"] == "deadline_seconds"
        assert "problems" in report["model"]["predicates"]

    def test_max_rounds_budget(self, files):
        code, _ = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--max-rounds",
                "2",
            ]
        )
        assert code == 4

    def test_checkpoint_and_resume(self, files, tmp_path):
        checkpoint = str(tmp_path / "run.ckpt.json")
        code, full = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--checkpoint",
                checkpoint,
                "--checkpoint-every",
                "1",
            ]
        )
        assert code == 0
        assert os.path.exists(checkpoint)
        code, resumed = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--resume-from",
                checkpoint,
            ]
        )
        assert code == 0
        assert resumed.splitlines()[1:] == full.splitlines()[1:]

    def test_datalog1s_budget(self, files):
        code, _ = run_cli(
            ["datalog1s", files["trains.d1s"], "--max-rounds", "1"]
        )
        assert code == 4

    def test_templog_json(self, files):
        code, output = run_cli(["templog", files["monitor.tlg"], "--json"])
        assert code == 0
        report = json.loads(output)
        assert report["outcome"] == "ok"
        assert "40n+5" in report["model"]
