"""Tests for the command-line interface."""

import io
import json
import os

import pytest

from repro.cli import main

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
relation seed[1; 0] { (n) where T1 = 0; }
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

DIVERGING = """
p(t) <- seed(t).
p(t + 5) <- p(t).
"""

D1S = """
train(5; liege).
train(t + 40; liege) <- train(t; liege).
"""

TEMPLOG = """
next^5 go.
always (next^40 go <- go).
"""


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, text in (
        ("edb.gdb", EDB),
        ("program.dtl", PROGRAM),
        ("diverge.dtl", DIVERGING),
        ("trains.d1s", D1S),
        ("monitor.tlg", TEMPLOG),
    ):
        path = tmp_path / name
        path.write_text(text)
        paths[name] = str(path)
    return paths


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRun:
    def test_closed_form(self, files):
        code, output = run_cli(
            ["run", files["program.dtl"], "--edb", files["edb.gdb"]]
        )
        assert code == 0
        assert "constraint safe: True" in output
        assert "168n+10" in output

    def test_window(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--window",
                "0",
                "60",
            ]
        )
        assert code == 0
        assert "(10, 12, 'database')" in output

    def test_predicate_filter(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--predicate",
                "problems",
            ]
        )
        assert code == 0
        assert output.count("problems [") == 1

    def test_give_up_exit_code(self, files):
        code, _ = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--patience",
                "3",
            ]
        )
        assert code == 3

    def test_give_up_partial(self, files):
        code, output = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--patience",
                "3",
                "--partial",
            ]
        )
        assert code == 3
        assert "gave up" in output


class TestStatsAndVerify:
    def test_stats_flag(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--stats",
            ]
        )
        assert code == 0
        assert "free signatures" in output

    def test_verify_flag(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--verify",
                "--window",
                "0",
                "300",
            ]
        )
        assert code == 0
        assert "model verified" in output


class TestOtherCommands:
    def test_query(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                'exists t2 (course(t1, t2; "database"))',
            ]
        )
        assert code == 0
        assert "168n+8" in output

    def test_query_truth_value(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                'exists t1, t2 (course(t1, t2; "database"))',
            ]
        )
        assert code == 0
        assert "truth value: True" in output

    def test_datalog1s(self, files):
        code, output = run_cli(["datalog1s", files["trains.d1s"]])
        assert code == 0
        assert "40n+5" in output

    def test_templog(self, files):
        code, output = run_cli(["templog", files["monitor.tlg"]])
        assert code == 0
        assert "40n+5" in output

    def test_explain(self, files):
        code, output = run_cli(
            ["explain", files["program.dtl"], "--edb", files["edb.gdb"]]
        )
        assert code == 0
        # One block per clause, every variant rendered, fingerprint last.
        assert output.count("clause:") == 2
        assert "plan naive:" in output
        assert "plan semi-naive, delta @ body position 0:" in output
        assert "scan course" in output
        # Each variant reports the join fast path the kernel will take
        # (hash / fused-closure / product).
        assert "fast path: course product" in output
        assert "plan fingerprint:" in output

    def test_explain_json(self, files):
        code, output = run_cli(
            ["explain", files["program.dtl"], "--edb", files["edb.gdb"], "--json"]
        )
        assert code == 0
        report = json.loads(output)
        assert report["command"] == "explain"
        assert len(report["plan_fingerprint"]) == 64
        assert "scan" in report["plans"]

    def test_parse_error_exit_code(self, files, tmp_path):
        bad = tmp_path / "bad.dtl"
        bad.write_text("p(t <-")
        code, _ = run_cli(["run", str(bad), "--edb", files["edb.gdb"]])
        assert code == 2

    def test_missing_file(self, files, capsys):
        code, _ = run_cli(["run", "/no/such/file", "--edb", files["edb.gdb"]])
        assert code == 2
        captured = capsys.readouterr()
        assert "cannot read /no/such/file" in captured.err
        assert len(captured.err.strip().splitlines()) == 1


class TestRuntimeFlags:
    def test_json_report(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--json",
                "--window",
                "0",
                "60",
            ]
        )
        assert code == 0
        report = json.loads(output)
        assert report["outcome"] == "ok"
        assert report["exit_code"] == 0
        assert report["stats"]["constraint_safe"] is True
        assert report["stats"]["rounds"] > 0
        summary = report["model"]["predicates"]["problems"]
        assert summary["generalized_tuples"] >= 1
        assert summary["window"]["tuples"]

    def test_budget_exit_code_and_partial_json(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--deadline",
                "0",
                "--json",
            ]
        )
        assert code == 4
        report = json.loads(output)
        assert report["outcome"] == "budget-exceeded"
        assert report["error"]["type"] == "BudgetExceededError"
        assert report["error"]["limit"] == "deadline_seconds"
        assert "problems" in report["model"]["predicates"]

    def test_max_rounds_budget(self, files):
        code, _ = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--max-rounds",
                "2",
            ]
        )
        assert code == 4

    def test_checkpoint_and_resume(self, files, tmp_path):
        checkpoint = str(tmp_path / "run.ckpt.json")
        code, full = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--checkpoint",
                checkpoint,
                "--checkpoint-every",
                "1",
            ]
        )
        assert code == 0
        assert os.path.exists(checkpoint)
        code, resumed = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--resume-from",
                checkpoint,
            ]
        )
        assert code == 0
        assert resumed.splitlines()[1:] == full.splitlines()[1:]

    def test_datalog1s_budget(self, files):
        code, _ = run_cli(
            ["datalog1s", files["trains.d1s"], "--max-rounds", "1"]
        )
        assert code == 4

    def test_templog_json(self, files):
        code, output = run_cli(["templog", files["monitor.tlg"], "--json"])
        assert code == 0
        report = json.loads(output)
        assert report["outcome"] == "ok"
        assert "40n+5" in report["model"]


class TestDeadlineFlag:
    def test_run_deadline_seconds_alias(self, files):
        code, _ = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--deadline-seconds",
                "0",
            ]
        )
        assert code == 4

    def test_query_deadline_exit_code_and_json(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                "exists t2 (course(t1, t2; C))",
                "--deadline-seconds",
                "0",
                "--json",
            ]
        )
        assert code == 4
        report = json.loads(output)
        assert report["command"] == "query"
        assert report["outcome"] == "budget-exceeded"
        assert report["error"]["type"] == "BudgetExceededError"
        assert report["error"]["limit"] == "deadline_seconds"

    def test_datalog1s_deadline(self, files):
        code, _ = run_cli(
            ["datalog1s", files["trains.d1s"], "--deadline-seconds", "0"]
        )
        assert code == 4

    def test_templog_deadline(self, files):
        code, _ = run_cli(
            ["templog", files["monitor.tlg"], "--deadline-seconds", "0"]
        )
        assert code == 4


class TestBatchCommand:
    def jobs_file(self, tmp_path, files, count=3):
        jobs = [
            {
                "id": "job-%d" % i,
                "kind": "run",
                "program_file": files["program.dtl"],
                "edb_file": files["edb.gdb"],
            }
            for i in range(count)
        ]
        jobs.append(
            {
                "id": "query-job",
                "kind": "query",
                "edb_file": files["edb.gdb"],
                "query": "exists t2 (course(t1, t2; C))",
            }
        )
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(jobs))
        return str(path)

    def test_batch_json_report(self, files, tmp_path):
        code, output = run_cli(
            ["batch", self.jobs_file(tmp_path, files), "--workers", "2", "--json"]
        )
        assert code == 0
        report = json.loads(output)
        assert report["command"] == "batch"
        assert report["exit_code"] == 0
        assert len(report["jobs"]) == 4
        for job in report["jobs"]:
            assert job["state"] == "ok"
            assert job["attempts"] == 1
            assert job["backend"] in ("compiled", "fo")
            assert job["degradation"] == []
        assert report["service"]["jobs"]["ok"] == 4
        assert report["health"]["status"] == "ok"

    def test_batch_human_output(self, files, tmp_path):
        code, output = run_cli(
            ["batch", self.jobs_file(tmp_path, files, count=1), "--workers", "1"]
        )
        assert code == 0
        assert "job-0: ok" in output
        assert "2 jobs: 2 ok" in output

    def test_batch_under_fault_plan_retries_and_reports(self, files, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {"specs": [{"site": "clause", "at": 4, "error": "transient"}]}
            )
        )
        jobs = tmp_path / "one.json"
        jobs.write_text(
            json.dumps(
                [
                    {
                        "id": "flaky",
                        "kind": "run",
                        "program_file": files["program.dtl"],
                        "edb_file": files["edb.gdb"],
                    }
                ]
            )
        )
        code, output = run_cli(
            [
                "batch",
                str(jobs),
                "--workers",
                "1",
                "--fault-plan",
                str(plan),
                "--json",
            ]
        )
        assert code == 0
        job = json.loads(output)["jobs"][0]
        assert job["state"] == "ok"
        assert job["attempts"] == 2
        assert job["resumed"] is True

    def test_batch_exit_code_partial(self, files, tmp_path):
        jobs = tmp_path / "late.json"
        jobs.write_text(
            json.dumps(
                [
                    {
                        "id": "late",
                        "kind": "run",
                        "program_file": files["program.dtl"],
                        "edb_file": files["edb.gdb"],
                        "deadline_seconds": 0,
                    }
                ]
            )
        )
        code, output = run_cli(["batch", str(jobs), "--workers", "1", "--json"])
        assert code == 3
        job = json.loads(output)["jobs"][0]
        assert job["state"] == "partial"
        assert job["outcome"] == "budget-exceeded"


class TestServeCommand:
    def test_serve_input_smoke(self, files, tmp_path):
        lines = [
            '{"op": "health"}',
            json.dumps(
                {
                    "kind": "run",
                    "program_file": files["program.dtl"],
                    "edb_file": files["edb.gdb"],
                }
            ),
            json.dumps(
                {
                    "id": "q1",
                    "kind": "query",
                    "edb_file": files["edb.gdb"],
                    "query": "exists t2 (course(t1, t2; C))",
                }
            ),
            "not json at all",
        ]
        stream = tmp_path / "input.jsonl"
        stream.write_text("\n".join(lines) + "\n")
        code, output = run_cli(
            ["serve", "--input", str(stream), "--workers", "1"]
        )
        assert code == 1  # the malformed line is a rejected job
        reports = [json.loads(line) for line in output.splitlines()]
        health = reports[0]
        assert health["status"] == "ok"
        by_id = {r["job_id"]: r for r in reports[1:] if "job_id" in r}
        assert by_id["job-2"]["state"] == "ok"
        assert by_id["q1"]["state"] == "ok"
        assert by_id["job-4"]["state"] == "rejected"


@pytest.fixture
def txn_files(tmp_path):
    """Ops files for the durable-store commands."""
    declare = [
        {
            "op": "declare",
            "relation": "course",
            "temporal_arity": 2,
            "data_arity": 1,
        },
        {
            "op": "assert",
            "relation": "course",
            "tuple": '(168n+8, 168n+10; "database") where T2 = T1 + 2',
        },
    ]
    more = [
        {
            "op": "assert",
            "relation": "course",
            "tuple": '(168n+20, 168n+22; "logic") where T2 = T1 + 2',
        },
    ]
    retract = [
        {
            "op": "retract",
            "relation": "course",
            "tuple": '(168n+20, 168n+22; "logic") where T2 = T1 + 2',
        },
    ]
    paths = {"store": str(tmp_path / "store")}
    for name, payload in (
        ("seed.json", declare),
        ("more.json", more),
        ("retract.json", retract),
        ("multi.json", {"txns": [declare, more]}),
    ):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        paths[name] = str(path)
    program = tmp_path / "problems.dtl"
    program.write_text(PROGRAM)
    paths["program"] = str(program)
    return paths


class TestTxn:
    def test_apply_and_log(self, txn_files):
        code, output = run_cli(
            ["txn", "apply", txn_files["store"], txn_files["seed.json"]]
        )
        assert code == 0
        assert "tx 1: +1" in output
        code, output = run_cli(["txn", "log", txn_files["store"]])
        assert code == 0
        assert "head tx: 1" in output

    def test_apply_multiple_txns_json(self, txn_files):
        code, output = run_cli(
            [
                "txn",
                "apply",
                txn_files["store"],
                txn_files["multi.json"],
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(output)
        assert report["head_tx"] == 2
        assert [r["tx"] for r in report["receipts"]] == [1, 2]

    def test_apply_with_maintain_window(self, txn_files):
        run_cli(["txn", "apply", txn_files["store"], txn_files["seed.json"]])
        code, output = run_cli(
            [
                "txn",
                "apply",
                txn_files["store"],
                txn_files["more.json"],
                "--maintain",
                txn_files["program"],
                "--window",
                "0",
                "60",
            ]
        )
        assert code == 0
        assert "% maintained to tx 2" in output
        assert "problems" in output

    def test_apply_maintain_json_matches_asof(self, txn_files):
        run_cli(["txn", "apply", txn_files["store"], txn_files["seed.json"]])
        code, maintained = run_cli(
            [
                "txn",
                "apply",
                txn_files["store"],
                txn_files["more.json"],
                "--maintain",
                txn_files["program"],
                "--window",
                "0",
                "120",
                "--json",
            ]
        )
        assert code == 0
        code, scratch = run_cli(
            [
                "asof",
                txn_files["store"],
                "--program",
                txn_files["program"],
                "--window",
                "0",
                "120",
                "--json",
            ]
        )
        assert code == 0
        maintained_model = json.loads(maintained)["model"]["predicates"]
        scratch_model = json.loads(scratch)["model"]["predicates"]
        assert maintained_model["problems"]["window"] == scratch_model[
            "problems"
        ]["window"]

    def test_checkpoint(self, txn_files):
        run_cli(["txn", "apply", txn_files["store"], txn_files["multi.json"]])
        code, output = run_cli(
            ["txn", "checkpoint", txn_files["store"], "--json"]
        )
        assert code == 0
        report = json.loads(output)
        assert report["head_tx"] == 2
        assert os.path.exists(report["path"])

    def test_invalid_ops_file(self, txn_files, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        code, _ = run_cli(["txn", "apply", txn_files["store"], str(bad)])
        assert code == 2

    def test_rejected_transaction_is_an_error(self, txn_files):
        run_cli(["txn", "apply", txn_files["store"], txn_files["seed.json"]])
        # Retract of a tuple that is not live: typed error, exit 1.
        code, _ = run_cli(
            ["txn", "apply", txn_files["store"], txn_files["retract.json"]]
        )
        assert code == 1


class TestAsof:
    def seed(self, txn_files):
        run_cli(["txn", "apply", txn_files["store"], txn_files["seed.json"]])
        run_cli(["txn", "apply", txn_files["store"], txn_files["more.json"]])
        run_cli(["txn", "apply", txn_files["store"], txn_files["retract.json"]])

    def test_edb_snapshots_differ_by_tx(self, txn_files):
        self.seed(txn_files)
        _, at1 = run_cli(["asof", txn_files["store"], "--tx", "1"])
        _, at2 = run_cli(["asof", txn_files["store"], "--tx", "2"])
        _, head = run_cli(["asof", txn_files["store"]])
        assert "logic" not in at1
        assert "logic" in at2
        # The retraction hides the tuple at head but not at tx 2.
        assert "logic" not in head
        assert "head 3" in head

    def test_program_over_snapshot(self, txn_files):
        self.seed(txn_files)
        code, output = run_cli(
            [
                "asof",
                txn_files["store"],
                "--tx",
                "2",
                "--program",
                txn_files["program"],
                "--window",
                "0",
                "60",
                "--json",
            ]
        )
        assert code == 0
        report = json.loads(output)
        assert report["tx"] == 2
        assert report["outcome"] == "ok"
        assert report["model"]["predicates"]["problems"]["window"]["tuples"]

    def test_tx_beyond_head_is_usage_error(self, txn_files):
        self.seed(txn_files)
        code, _ = run_cli(["asof", txn_files["store"], "--tx", "99"])
        assert code == 2


class TestTxnCrashRecovery:
    def test_sigkill_fault_mid_append_loses_only_uncommitted(
        self, txn_files, tmp_path
    ):
        import subprocess
        import sys

        run_cli(["txn", "apply", txn_files["store"], txn_files["seed.json"]])
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps([{"site": "wal_append", "at": 1, "error": "sigkill"}])
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
                "txn",
                "apply",
                txn_files["store"],
                txn_files["more.json"],
                "--fault-plan",
                str(plan),
            ],
            env=env,
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode == -9  # SIGKILL mid-commit
        # Recovery: the store reopens cleanly with only tx 1 committed,
        # and the killed transaction can simply be re-applied.
        code, output = run_cli(["txn", "log", txn_files["store"], "--json"])
        assert code == 0
        assert json.loads(output)["head_tx"] == 1
        code, _ = run_cli(
            ["txn", "apply", txn_files["store"], txn_files["more.json"]]
        )
        assert code == 0


class TestServeShutdown:
    def test_sigterm_drains_and_exits_zero(self, files, tmp_path):
        import signal
        import subprocess
        import sys
        import time

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src")]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
                "serve",
                "--workers",
                "1",
            ],
            env=env,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        job = json.dumps(
            {
                "id": "j1",
                "kind": "run",
                "program_file": files["program.dtl"],
                "edb_file": files["edb.gdb"],
            }
        )
        proc.stdin.write(job + "\n")
        proc.stdin.flush()
        # Give the job time to be submitted, then interrupt the loop.
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        try:
            stdout, stderr = proc.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        assert proc.returncode == 0
        assert "shutting down" in stderr
        # The submitted job was drained: its result line was written.
        lines = [json.loads(line) for line in stdout.splitlines() if line]
        assert any(r.get("job_id") == "j1" and r["state"] == "ok" for r in lines)
