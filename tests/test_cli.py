"""Tests for the command-line interface."""

import io
import json
import os

import pytest

from repro.cli import main

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
relation seed[1; 0] { (n) where T1 = 0; }
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

DIVERGING = """
p(t) <- seed(t).
p(t + 5) <- p(t).
"""

D1S = """
train(5; liege).
train(t + 40; liege) <- train(t; liege).
"""

TEMPLOG = """
next^5 go.
always (next^40 go <- go).
"""


@pytest.fixture
def files(tmp_path):
    paths = {}
    for name, text in (
        ("edb.gdb", EDB),
        ("program.dtl", PROGRAM),
        ("diverge.dtl", DIVERGING),
        ("trains.d1s", D1S),
        ("monitor.tlg", TEMPLOG),
    ):
        path = tmp_path / name
        path.write_text(text)
        paths[name] = str(path)
    return paths


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestRun:
    def test_closed_form(self, files):
        code, output = run_cli(
            ["run", files["program.dtl"], "--edb", files["edb.gdb"]]
        )
        assert code == 0
        assert "constraint safe: True" in output
        assert "168n+10" in output

    def test_window(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--window",
                "0",
                "60",
            ]
        )
        assert code == 0
        assert "(10, 12, 'database')" in output

    def test_predicate_filter(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--predicate",
                "problems",
            ]
        )
        assert code == 0
        assert output.count("problems [") == 1

    def test_give_up_exit_code(self, files):
        code, _ = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--patience",
                "3",
            ]
        )
        assert code == 3

    def test_give_up_partial(self, files):
        code, output = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--patience",
                "3",
                "--partial",
            ]
        )
        assert code == 3
        assert "gave up" in output


class TestStatsAndVerify:
    def test_stats_flag(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--stats",
            ]
        )
        assert code == 0
        assert "free signatures" in output

    def test_verify_flag(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--verify",
                "--window",
                "0",
                "300",
            ]
        )
        assert code == 0
        assert "model verified" in output


class TestOtherCommands:
    def test_query(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                'exists t2 (course(t1, t2; "database"))',
            ]
        )
        assert code == 0
        assert "168n+8" in output

    def test_query_truth_value(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                'exists t1, t2 (course(t1, t2; "database"))',
            ]
        )
        assert code == 0
        assert "truth value: True" in output

    def test_datalog1s(self, files):
        code, output = run_cli(["datalog1s", files["trains.d1s"]])
        assert code == 0
        assert "40n+5" in output

    def test_templog(self, files):
        code, output = run_cli(["templog", files["monitor.tlg"]])
        assert code == 0
        assert "40n+5" in output

    def test_explain(self, files):
        code, output = run_cli(
            ["explain", files["program.dtl"], "--edb", files["edb.gdb"]]
        )
        assert code == 0
        # One block per clause, every variant rendered, fingerprint last.
        assert output.count("clause:") == 2
        assert "plan naive:" in output
        assert "plan semi-naive, delta @ body position 0:" in output
        assert "scan course" in output
        # Each variant reports the join fast path the kernel will take
        # (hash / fused-closure / product).
        assert "fast path: course product" in output
        assert "plan fingerprint:" in output

    def test_explain_json(self, files):
        code, output = run_cli(
            ["explain", files["program.dtl"], "--edb", files["edb.gdb"], "--json"]
        )
        assert code == 0
        report = json.loads(output)
        assert report["command"] == "explain"
        assert len(report["plan_fingerprint"]) == 64
        assert "scan" in report["plans"]

    def test_parse_error_exit_code(self, files, tmp_path):
        bad = tmp_path / "bad.dtl"
        bad.write_text("p(t <-")
        code, _ = run_cli(["run", str(bad), "--edb", files["edb.gdb"]])
        assert code == 2

    def test_missing_file(self, files, capsys):
        code, _ = run_cli(["run", "/no/such/file", "--edb", files["edb.gdb"]])
        assert code == 2
        captured = capsys.readouterr()
        assert "cannot read /no/such/file" in captured.err
        assert len(captured.err.strip().splitlines()) == 1


class TestRuntimeFlags:
    def test_json_report(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--json",
                "--window",
                "0",
                "60",
            ]
        )
        assert code == 0
        report = json.loads(output)
        assert report["outcome"] == "ok"
        assert report["exit_code"] == 0
        assert report["stats"]["constraint_safe"] is True
        assert report["stats"]["rounds"] > 0
        summary = report["model"]["predicates"]["problems"]
        assert summary["generalized_tuples"] >= 1
        assert summary["window"]["tuples"]

    def test_budget_exit_code_and_partial_json(self, files):
        code, output = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--deadline",
                "0",
                "--json",
            ]
        )
        assert code == 4
        report = json.loads(output)
        assert report["outcome"] == "budget-exceeded"
        assert report["error"]["type"] == "BudgetExceededError"
        assert report["error"]["limit"] == "deadline_seconds"
        assert "problems" in report["model"]["predicates"]

    def test_max_rounds_budget(self, files):
        code, _ = run_cli(
            [
                "run",
                files["diverge.dtl"],
                "--edb",
                files["edb.gdb"],
                "--max-rounds",
                "2",
            ]
        )
        assert code == 4

    def test_checkpoint_and_resume(self, files, tmp_path):
        checkpoint = str(tmp_path / "run.ckpt.json")
        code, full = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--checkpoint",
                checkpoint,
                "--checkpoint-every",
                "1",
            ]
        )
        assert code == 0
        assert os.path.exists(checkpoint)
        code, resumed = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--resume-from",
                checkpoint,
            ]
        )
        assert code == 0
        assert resumed.splitlines()[1:] == full.splitlines()[1:]

    def test_datalog1s_budget(self, files):
        code, _ = run_cli(
            ["datalog1s", files["trains.d1s"], "--max-rounds", "1"]
        )
        assert code == 4

    def test_templog_json(self, files):
        code, output = run_cli(["templog", files["monitor.tlg"], "--json"])
        assert code == 0
        report = json.loads(output)
        assert report["outcome"] == "ok"
        assert "40n+5" in report["model"]


class TestDeadlineFlag:
    def test_run_deadline_seconds_alias(self, files):
        code, _ = run_cli(
            [
                "run",
                files["program.dtl"],
                "--edb",
                files["edb.gdb"],
                "--deadline-seconds",
                "0",
            ]
        )
        assert code == 4

    def test_query_deadline_exit_code_and_json(self, files):
        code, output = run_cli(
            [
                "query",
                files["edb.gdb"],
                "exists t2 (course(t1, t2; C))",
                "--deadline-seconds",
                "0",
                "--json",
            ]
        )
        assert code == 4
        report = json.loads(output)
        assert report["command"] == "query"
        assert report["outcome"] == "budget-exceeded"
        assert report["error"]["type"] == "BudgetExceededError"
        assert report["error"]["limit"] == "deadline_seconds"

    def test_datalog1s_deadline(self, files):
        code, _ = run_cli(
            ["datalog1s", files["trains.d1s"], "--deadline-seconds", "0"]
        )
        assert code == 4

    def test_templog_deadline(self, files):
        code, _ = run_cli(
            ["templog", files["monitor.tlg"], "--deadline-seconds", "0"]
        )
        assert code == 4


class TestBatchCommand:
    def jobs_file(self, tmp_path, files, count=3):
        jobs = [
            {
                "id": "job-%d" % i,
                "kind": "run",
                "program_file": files["program.dtl"],
                "edb_file": files["edb.gdb"],
            }
            for i in range(count)
        ]
        jobs.append(
            {
                "id": "query-job",
                "kind": "query",
                "edb_file": files["edb.gdb"],
                "query": "exists t2 (course(t1, t2; C))",
            }
        )
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps(jobs))
        return str(path)

    def test_batch_json_report(self, files, tmp_path):
        code, output = run_cli(
            ["batch", self.jobs_file(tmp_path, files), "--workers", "2", "--json"]
        )
        assert code == 0
        report = json.loads(output)
        assert report["command"] == "batch"
        assert report["exit_code"] == 0
        assert len(report["jobs"]) == 4
        for job in report["jobs"]:
            assert job["state"] == "ok"
            assert job["attempts"] == 1
            assert job["backend"] in ("compiled", "fo")
            assert job["degradation"] == []
        assert report["service"]["jobs"]["ok"] == 4
        assert report["health"]["status"] == "ok"

    def test_batch_human_output(self, files, tmp_path):
        code, output = run_cli(
            ["batch", self.jobs_file(tmp_path, files, count=1), "--workers", "1"]
        )
        assert code == 0
        assert "job-0: ok" in output
        assert "2 jobs: 2 ok" in output

    def test_batch_under_fault_plan_retries_and_reports(self, files, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {"specs": [{"site": "clause", "at": 4, "error": "transient"}]}
            )
        )
        jobs = tmp_path / "one.json"
        jobs.write_text(
            json.dumps(
                [
                    {
                        "id": "flaky",
                        "kind": "run",
                        "program_file": files["program.dtl"],
                        "edb_file": files["edb.gdb"],
                    }
                ]
            )
        )
        code, output = run_cli(
            [
                "batch",
                str(jobs),
                "--workers",
                "1",
                "--fault-plan",
                str(plan),
                "--json",
            ]
        )
        assert code == 0
        job = json.loads(output)["jobs"][0]
        assert job["state"] == "ok"
        assert job["attempts"] == 2
        assert job["resumed"] is True

    def test_batch_exit_code_partial(self, files, tmp_path):
        jobs = tmp_path / "late.json"
        jobs.write_text(
            json.dumps(
                [
                    {
                        "id": "late",
                        "kind": "run",
                        "program_file": files["program.dtl"],
                        "edb_file": files["edb.gdb"],
                        "deadline_seconds": 0,
                    }
                ]
            )
        )
        code, output = run_cli(["batch", str(jobs), "--workers", "1", "--json"])
        assert code == 3
        job = json.loads(output)["jobs"][0]
        assert job["state"] == "partial"
        assert job["outcome"] == "budget-exceeded"


class TestServeCommand:
    def test_serve_input_smoke(self, files, tmp_path):
        lines = [
            '{"op": "health"}',
            json.dumps(
                {
                    "kind": "run",
                    "program_file": files["program.dtl"],
                    "edb_file": files["edb.gdb"],
                }
            ),
            json.dumps(
                {
                    "id": "q1",
                    "kind": "query",
                    "edb_file": files["edb.gdb"],
                    "query": "exists t2 (course(t1, t2; C))",
                }
            ),
            "not json at all",
        ]
        stream = tmp_path / "input.jsonl"
        stream.write_text("\n".join(lines) + "\n")
        code, output = run_cli(
            ["serve", "--input", str(stream), "--workers", "1"]
        )
        assert code == 1  # the malformed line is a rejected job
        reports = [json.loads(line) for line in output.splitlines()]
        health = reports[0]
        assert health["status"] == "ok"
        by_id = {r["job_id"]: r for r in reports[1:] if "job_id" in r}
        assert by_id["job-2"]["state"] == "ok"
        assert by_id["q1"]["state"] == "ok"
        assert by_id["job-4"]["state"] == "rejected"
