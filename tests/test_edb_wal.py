"""The write-ahead log: CRC framing, rotation, torn-tail recovery.

The recovery contract under test: damage a crash can explain (an
incomplete or checksum-bad FINAL frame in the LAST segment) is
truncated silently; any other damage — bytes after a bad frame, or any
problem in a sealed segment — raises :class:`WalCorruptError` instead
of silently dropping committed records.
"""

import json
import os
import struct
import zlib

import pytest

from repro.edb.wal import _HEADER, Wal
from repro.util.errors import WalCorruptError, WalError


def open_wal(tmp_path, **kwargs):
    return Wal(str(tmp_path / "wal"), **kwargs)


def append_all(wal, records):
    for record in records:
        wal.append(record)
    wal.sync()


def tail_path(wal):
    return os.path.join(wal.root, "wal-%08d.seg" % wal.tail_index)


class TestFraming:
    def test_round_trip(self, tmp_path):
        wal = open_wal(tmp_path)
        records = [{"type": "txn", "tx": i, "ops": []} for i in range(1, 6)]
        append_all(wal, records)
        assert list(wal.records()) == records
        wal.close()
        reopened = open_wal(tmp_path)
        assert list(reopened.records()) == records
        assert reopened.recovered_records == 5
        assert reopened.truncated_bytes == 0

    def test_append_returns_frame_length(self, tmp_path):
        wal = open_wal(tmp_path)
        record = {"tx": 1}
        length = wal.append(record)
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
        assert length == _HEADER.size + len(payload)

    def test_closed_wal_refuses_writes(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.close()
        with pytest.raises(WalError):
            wal.append({"tx": 1})
        with pytest.raises(WalError):
            wal.sync()
        with pytest.raises(WalError):
            wal.rotate()

    def test_close_is_idempotent(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.close()
        wal.close()


class TestRotation:
    def test_rotate_seals_and_continues(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append({"tx": 1})
        wal.sync()
        assert wal.rotate() == 2
        wal.append({"tx": 2})
        wal.sync()
        assert wal.segment_indices() == [1, 2]
        assert [r["tx"] for r in wal.records()] == [1, 2]

    def test_auto_rotation_past_threshold(self, tmp_path):
        wal = open_wal(tmp_path, segment_bytes=64)
        for tx in range(1, 8):
            wal.append({"tx": tx, "pad": "x" * 40})
        wal.sync()
        assert len(wal.segment_indices()) > 1
        assert [r["tx"] for r in wal.records()] == list(range(1, 8))
        wal.close()
        reopened = open_wal(tmp_path, segment_bytes=64)
        assert [r["tx"] for r in reopened.records()] == list(range(1, 8))

    def test_drop_segments_before_keeps_tail(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append({"tx": 1})
        wal.sync()
        wal.rotate()
        wal.rotate()
        removed = wal.drop_segments_before(wal.tail_index)
        assert removed == [1, 2]
        assert wal.segment_indices() == [wal.tail_index]
        # Asking to drop everything still spares the live tail.
        assert wal.drop_segments_before(10**6) == []


class TestTornTail:
    def make_two(self, tmp_path):
        wal = open_wal(tmp_path)
        append_all(wal, [{"tx": 1}, {"tx": 2}])
        wal.close()
        return wal

    def test_incomplete_header_truncated(self, tmp_path):
        wal = self.make_two(tmp_path)
        with open(tail_path(wal), "ab") as handle:
            handle.write(b"\x07\x00")  # torn mid-header
        reopened = open_wal(tmp_path)
        assert reopened.truncated_bytes == 2
        assert [r["tx"] for r in reopened.records()] == [1, 2]

    def test_incomplete_payload_truncated(self, tmp_path):
        wal = self.make_two(tmp_path)
        payload = b'{"tx":3}'
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with open(tail_path(wal), "ab") as handle:
            handle.write(frame[:-3])  # torn mid-payload
        reopened = open_wal(tmp_path)
        assert reopened.truncated_bytes == len(frame) - 3
        assert [r["tx"] for r in reopened.records()] == [1, 2]

    def test_final_frame_bad_crc_truncated(self, tmp_path):
        wal = self.make_two(tmp_path)
        payload = b'{"tx":3}'
        frame = _HEADER.pack(len(payload), zlib.crc32(payload) ^ 0xFF) + payload
        with open(tail_path(wal), "ab") as handle:
            handle.write(frame)
        reopened = open_wal(tmp_path)
        assert reopened.truncated_bytes == len(frame)
        assert [r["tx"] for r in reopened.records()] == [1, 2]

    def test_recovery_then_append_continues_cleanly(self, tmp_path):
        wal = self.make_two(tmp_path)
        with open(tail_path(wal), "ab") as handle:
            handle.write(b"torn")
        reopened = open_wal(tmp_path)
        reopened.append({"tx": 3})
        reopened.sync()
        assert [r["tx"] for r in reopened.records()] == [1, 2, 3]


class TestCorruption:
    def test_bad_crc_with_bytes_following_is_corrupt(self, tmp_path):
        wal = open_wal(tmp_path)
        append_all(wal, [{"tx": 1}, {"tx": 2}])
        wal.close()
        path = tail_path(wal)
        with open(path, "r+b") as handle:
            handle.seek(_HEADER.size + 1)  # inside the FIRST payload
            handle.write(b"X")
        with pytest.raises(WalCorruptError) as excinfo:
            open_wal(tmp_path)
        assert excinfo.value.path == path
        assert excinfo.value.offset == 0

    def test_damage_in_sealed_segment_is_corrupt(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append({"tx": 1})
        wal.sync()
        sealed = tail_path(wal)
        wal.rotate()
        wal.append({"tx": 2})
        wal.close()
        with open(sealed, "r+b") as handle:
            handle.truncate(3)  # even a torn-looking tail is fatal here
        with pytest.raises(WalCorruptError):
            open_wal(tmp_path)

    def test_valid_crc_invalid_json_is_corrupt(self, tmp_path):
        wal = open_wal(tmp_path)
        wal.append({"tx": 1})
        wal.close()
        payload = b"not json at all"
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with open(tail_path(wal), "ab") as handle:
            handle.write(frame)
        # The CRC matches, so the bytes were written intact: this is
        # writer corruption, never a torn write.
        with pytest.raises(WalCorruptError):
            open_wal(tmp_path)

    def test_error_carries_offset_context(self, tmp_path):
        wal = open_wal(tmp_path)
        append_all(wal, [{"tx": 1}, {"tx": 2}, {"tx": 3}])
        wal.close()
        first = _HEADER.size + len(b'{"tx":1}')
        with open(tail_path(wal), "r+b") as handle:
            handle.seek(first + _HEADER.size + 1)  # inside payload 2 of 3
            handle.write(b"X")
        with pytest.raises(WalCorruptError) as excinfo:
            open_wal(tmp_path)
        assert excinfo.value.offset == first
        assert "at byte %d" % first in str(excinfo.value)
