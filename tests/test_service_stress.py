"""The ISSUE acceptance scenario: a 50-job batch under a fault plan
that kills a worker and sprinkles transient clause faults must
terminate within its deadline with every job in a terminal state —
each one either a model ``equivalent()`` to the fault-free run or a
typed partial/failed result — and with retries resuming from
checkpoints rather than restarting from round 0."""

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.runtime.faults import FaultPlan, TransientFaultError
from repro.service import (
    JobSpec,
    QueryService,
    RetryPolicy,
    STATE_OK,
    TERMINAL_STATES,
)
from repro.util.errors import WorkerDiedError

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

JOBS = 50

#: One healthy run makes ~9 clause hits over 8 rounds (2 in the naive
#: first round, before the first checkpoint exists).  Firing every 61st
#: hit from hit 20 scatters ~8 transient faults across the batch's
#: ~450 hits, almost surely past some job's first checkpoint.
FAULT_PLAN = FaultPlan.inject(
    "worker_start", at=3, error=WorkerDiedError
).and_inject("clause", at=20, error=TransientFaultError, every=61)


def test_fifty_job_batch_survives_faults():
    baseline = DeductiveEngine(parse_program(PROGRAM), parse_database(EDB)).run()
    specs = [
        JobSpec("stress-%02d" % i, "run", program=PROGRAM, edb=EDB)
        for i in range(JOBS)
    ]
    retry = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)
    with FAULT_PLAN.installed():
        with QueryService(
            workers=4, queue_limit=JOBS, retry=retry, default_deadline=30.0
        ) as svc:
            results = svc.run_batch(specs, timeout=120.0)
            stats = svc.stats()

    # Every job reached a terminal state; nothing hung or vanished.
    assert len(results) == JOBS
    assert all(result.terminal() for result in results)
    assert all(result.state in TERMINAL_STATES for result in results)
    by_id = {result.job_id: result for result in results}
    assert sorted(by_id) == sorted(spec.job_id for spec in specs)

    # Jobs that completed produced the fault-free model; the rest are
    # typed partial/failed results, never silent corruption.
    ok = [result for result in results if result.state == STATE_OK]
    assert len(ok) >= JOBS - 5
    assert all(result.model.equivalent(baseline) for result in ok)
    for result in results:
        if result.state != STATE_OK:
            assert result.outcome
            assert result.error or result.model is not None

    # The injected faults actually bit: the killed worker's job was
    # requeued and the transient clause faults forced retries that
    # resumed from a checkpoint instead of round 0.
    retried = [result for result in results if result.attempts > 1]
    assert retried
    resumed = [
        result
        for result in results
        if result.resumed and result.stats.get("resumed_from_round", 0) >= 1
    ]
    assert resumed
    assert stats["workers"]["restarts"] >= 1
    assert stats["jobs"]["requeues"] >= 1
    assert stats["jobs"]["completed"] == JOBS


def test_stats_health_and_histograms_consistent_under_faults():
    """Concurrent ``stats()``/``health()``/``metrics_text()`` snapshots
    taken WHILE a faulted batch runs must satisfy the pool invariants
    at every instant, and once the batch drains the latency histogram
    totals must match the job count exactly."""
    import threading

    jobs = 20
    specs = [
        JobSpec("obs-%02d" % i, "run", program=PROGRAM, edb=EDB)
        for i in range(jobs)
    ]
    retry = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)
    plan = FaultPlan.inject(
        "clause", at=10, error=TransientFaultError, every=29
    ).and_inject("worker_start", at=5, error=WorkerDiedError)
    violations = []
    stop = threading.Event()

    with plan.installed():
        with QueryService(
            workers=3, queue_limit=jobs, retry=retry, default_deadline=30.0
        ) as svc:

            def probe():
                while not stop.is_set():
                    snapshot = svc.stats()
                    health = svc.health()
                    counters = snapshot["jobs"]
                    try:
                        assert counters["completed"] <= counters["submitted"]
                        assert (
                            counters["ok"] + counters["partial"] + counters["failed"]
                            <= counters["completed"] + counters["rejected"]
                        )
                        assert counters["shed"] <= counters["rejected"]
                        assert 0 <= snapshot["queue"]["depth"] <= snapshot["queue"]["limit"]
                        assert 0 <= snapshot["workers"]["alive"] <= snapshot["workers"]["configured"]
                        assert health["status"] in ("ok", "degraded")
                        text = svc.metrics_text()
                        assert text.startswith("# HELP")
                        assert "repro_queue_depth" in text
                    except AssertionError as failure:  # pragma: no cover
                        violations.append(failure)
                        return

            prober = threading.Thread(target=probe)
            prober.start()
            try:
                results = svc.run_batch(specs, timeout=120.0)
            finally:
                stop.set()
                prober.join()
            stats = svc.stats()
            metrics = svc.metrics.to_dict()

    assert violations == []
    assert len(results) == jobs
    assert stats["jobs"]["completed"] == jobs

    # Histogram totals match the job count: every job lands in exactly
    # one end-to-end series (keyed by outcome) and, having been claimed
    # at least once, exactly one queue-wait observation.
    end_to_end = metrics["repro_job_end_to_end_seconds"]["series"]
    assert sum(series["count"] for series in end_to_end) == jobs
    by_outcome = {
        series["labels"]["outcome"]: series["count"] for series in end_to_end
    }
    from collections import Counter

    assert by_outcome == dict(Counter(result.outcome for result in results))
    queue_wait = metrics["repro_job_queue_wait_seconds"]["series"]
    assert sum(series["count"] for series in queue_wait) == jobs
    execution = metrics["repro_job_execution_seconds"]["series"]
    assert sum(series["count"] for series in execution) == jobs
