"""Chaos tests for the supervised shard pool.

The invariant under attack: no matter which shard workers die when —
SIGKILLed mid-round, wedged past the recv deadline, unplugged at
dispatch — a parallel run's model, per-round stats, and checkpoint
payloads stay *identical* to the sequential run.  A healed pool leaves
no mark on the stats (only ``shard.worker`` trace events); an
unhealable pool degrades the rest of the run to sequential in-process
evaluation, recorded in ``stats.shard_degraded`` and announced as
``shard.degraded``, and still completes exactly.  Every exit — healed,
degraded, budget trip, give-up, checkpoint fault, plain close — must
leave a clean process table.
"""

import multiprocessing
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.plan.shard import ShardPool
from repro.runtime.budget import EvaluationBudget
from repro.runtime.faults import FaultPlan
from repro.service import JobSpec, QueryService
from repro.util import hooks
from repro.util.errors import (
    BudgetExceededError,
    EvaluationAbortedError,
    GiveUpError,
)

from tests.test_parallel import (
    EXAMPLE_41_EDB,
    EXAMPLE_41_PROGRAM,
    _checkpoint_payload,
    _shm_leftovers,
)

PROGRAM = parse_program(EXAMPLE_41_PROGRAM)
EDB = parse_database(EXAMPLE_41_EDB)


def _shard_children():
    """Live shard worker processes (the leak detector)."""
    # Reap any workers that already exited so is-alive is accurate.
    return [
        process
        for process in multiprocessing.active_children()
        if process.name.startswith("repro-shard-") and process.is_alive()
    ]


def _assert_no_leak():
    # close() joins with timeouts, so anything still alive here leaked.
    deadline = time.monotonic() + 5.0
    while _shard_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _shard_children() == []
    # Satellite: every exit path must also unlink every shared-memory
    # segment the stratum broadcast and round replies created.
    assert _shm_leftovers() == []


def _engine(**kwargs):
    kwargs.setdefault("strategy", "semi-naive")
    kwargs.setdefault("parallelism", 2)
    kwargs.setdefault("shard_recv_deadline", 15.0)
    return DeductiveEngine(PROGRAM, EDB, **kwargs)


def _run(plan=None, checkpoint_path=None, **kwargs):
    engine = _engine(**kwargs)
    run_kwargs = {}
    if checkpoint_path is not None:
        run_kwargs = {"checkpoint_path": checkpoint_path, "checkpoint_every": 1}
    if plan is None:
        return engine.run(**run_kwargs)
    with plan.installed():
        return engine.run(**run_kwargs)


@pytest.fixture(scope="module")
def sequential(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("seq") / "seq.ckpt.json")
    model = DeductiveEngine(PROGRAM, EDB, strategy="semi-naive").run(
        checkpoint_path=path, checkpoint_every=1
    )
    return model, path


def _assert_identical(model, sequential_pair):
    baseline, _ = sequential_pair
    assert model.equivalent(baseline)
    assert str(model) == str(baseline)
    assert model.stats.rounds == baseline.stats.rounds
    assert model.stats.new_tuples_per_round == baseline.stats.new_tuples_per_round
    assert (
        model.stats.derived_tuples_per_round
        == baseline.stats.derived_tuples_per_round
    )


class TestHealedFaults:
    """Worker losses the pool absorbs: stats and checkpoints must be
    byte-identical to sequential, with no trace of the supervision."""

    def test_sigkill_mid_round(self, sequential, tmp_path):
        path = str(tmp_path / "crash.ckpt.json")
        events = []
        sink = hooks.subscribe(
            lambda kind, fields: events.append((kind, dict(fields)))
            if kind.startswith("shard.")
            else None
        )
        try:
            model = _run(
                plan=FaultPlan.inject("shard_worker_crash", at=3),
                checkpoint_path=path,
            )
        finally:
            hooks.unsubscribe(sink)
        _assert_identical(model, sequential)
        assert model.stats.shard_degraded is None
        assert "shard_degraded" not in model.stats.to_dict()
        assert _checkpoint_payload(path) == _checkpoint_payload(sequential[1])
        phases = [f["phase"] for k, f in events if k == "shard.worker"]
        assert "lost" in phases and "retry" in phases
        lost = next(f for k, f in events if k == "shard.worker" and f["phase"] == "lost")
        # SIGKILL delivery races the dispatch send: the death is seen
        # either at send time or at receive time, both as a crash.
        assert lost["reason"] == "crash"
        assert lost["exitcode"] is None or lost["exitcode"] < 0
        _assert_no_leak()

    def test_hang_past_recv_deadline(self, sequential, tmp_path):
        path = str(tmp_path / "hang.ckpt.json")
        events = []
        sink = hooks.subscribe(
            lambda kind, fields: events.append(dict(fields))
            if kind == "shard.worker"
            else None
        )
        try:
            model = _run(
                plan=FaultPlan.inject("shard_worker_hang", at=2),
                checkpoint_path=path,
                shard_recv_deadline=0.75,
            )
        finally:
            hooks.unsubscribe(sink)
        _assert_identical(model, sequential)
        assert model.stats.shard_degraded is None
        assert _checkpoint_payload(path) == _checkpoint_payload(sequential[1])
        assert any(f.get("reason") == "hang" for f in events)
        _assert_no_leak()

    def test_dispatch_pipe_fault(self, sequential, tmp_path):
        path = str(tmp_path / "dispatch.ckpt.json")
        model = _run(
            plan=FaultPlan.inject("shard_dispatch", at=2),
            checkpoint_path=path,
        )
        _assert_identical(model, sequential)
        assert model.stats.shard_degraded is None
        assert _checkpoint_payload(path) == _checkpoint_payload(sequential[1])
        _assert_no_leak()

    def test_sigkill_heals_under_spawn(self, sequential, monkeypatch):
        """A spawn-mode pool (private memory, private resource
        trackers) must heal a mid-round kill exactly like fork — and
        the dying worker's tracker must not unlink segments the
        survivors still need."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn unavailable here")
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        model = _run(plan=FaultPlan.inject("shard_worker_crash", at=3))
        _assert_identical(model, sequential)
        assert model.stats.shard_degraded is None
        _assert_no_leak()

    @settings(max_examples=6, deadline=None)
    @given(hit=st.integers(min_value=1, max_value=12))
    def test_random_kill_schedule_never_changes_model(self, sequential, hit):
        """Property: killing whichever worker makes the ``hit``-th round
        dispatch (any round, either worker, including hits the run never
        reaches) does not change the model or the per-round history."""
        model = _run(plan=FaultPlan.inject("shard_worker_crash", at=hit))
        _assert_identical(model, sequential)
        assert model.stats.shard_degraded is None
        _assert_no_leak()


class TestDegradation:
    """Unhealable losses: the run downshifts, completes exactly, and
    says so."""

    def test_full_pool_loss_degrades_to_sequential(self, sequential):
        events = []
        sink = hooks.subscribe(
            lambda kind, fields: events.append((kind, dict(fields)))
            if kind.startswith("shard.")
            else None
        )
        try:
            model = _run(
                plan=FaultPlan.inject("shard_worker_crash", at=1, repeat=True)
            )
        finally:
            hooks.unsubscribe(sink)
        _assert_identical(model, sequential)
        degraded = model.stats.shard_degraded
        assert degraded is not None
        assert degraded["restarts_used"] == 2
        assert model.stats.to_dict()["shard_degraded"] == degraded
        downshifts = [f for k, f in events if k == "shard.degraded"]
        assert len(downshifts) == 1
        assert downshifts[0]["reason"] == degraded["reason"]
        _assert_no_leak()

    def test_degraded_checkpoint_resumes(self, sequential, tmp_path):
        """A degraded run's checkpoint differs from sequential only by
        the shard_degraded stats key — and still resumes exactly."""
        path = str(tmp_path / "degraded.ckpt.json")
        model = _run(
            plan=FaultPlan.inject("shard_worker_crash", at=1, repeat=True),
            checkpoint_path=path,
        )
        assert model.stats.shard_degraded is not None
        payload = _checkpoint_payload(path)
        baseline = _checkpoint_payload(sequential[1])
        assert payload["stats"].pop("shard_degraded") is not None
        assert payload == baseline
        resumed = DeductiveEngine(PROGRAM, EDB, strategy="semi-naive").run(
            resume_from=path
        )
        assert str(resumed) == str(sequential[0])
        _assert_no_leak()

    def test_no_fallback_raises(self):
        engine = _engine(shard_fallback=False)
        plan = FaultPlan.inject("shard_worker_crash", at=1, repeat=True)
        with plan.installed():
            with pytest.raises(EvaluationAbortedError) as excinfo:
                engine.run()
        assert excinfo.value.partial_model is not None
        _assert_no_leak()

    def test_zero_restarts_still_heals_on_survivors(self, sequential):
        """With the respawn budget at 0, a single crash must be healed
        purely by re-dealing to the survivor."""
        model = _run(
            plan=FaultPlan.inject("shard_worker_crash", at=3),
            shard_max_restarts=0,
        )
        _assert_identical(model, sequential)
        assert model.stats.shard_degraded is None
        _assert_no_leak()


class TestLeakFreeExits:
    """Satellite: every engine exit from a parallel run closes the pool."""

    def test_budget_trip_closes_pool(self):
        engine = _engine()
        with pytest.raises(BudgetExceededError):
            engine.run(budget=EvaluationBudget(max_rounds=2))
        _assert_no_leak()

    def test_give_up_closes_pool(self):
        engine = _engine(max_rounds=3, on_give_up="raise")
        with pytest.raises(GiveUpError):
            engine.run()
        _assert_no_leak()

    def test_checkpoint_fault_closes_pool(self, tmp_path):
        engine = _engine()
        plan = FaultPlan.inject("checkpoint_write", at=1)
        with plan.installed():
            with pytest.raises(EvaluationAbortedError):
                engine.run(
                    checkpoint_path=str(tmp_path / "ck.json"),
                    checkpoint_every=1,
                )
        _assert_no_leak()

    def test_pool_is_context_manager(self):
        with ShardPool(str(PROGRAM), str(EDB), "compiled", 2) as pool:
            pool.ensure_started()
            assert pool.started()
            assert len(_shard_children()) == 2
        assert not pool.started()
        _assert_no_leak()

    def test_close_escalates_past_hung_worker(self):
        """close() must come back promptly even when a worker ignores
        the cooperative stop (wedged in the chaos hang loop)."""
        pool = ShardPool(str(PROGRAM), str(EDB), "compiled", 2)
        pool.ensure_started()
        pool._workers[0].connection.send({"op": "hang"})
        time.sleep(0.2)  # let the worker enter the hang loop
        started = time.monotonic()
        pool.close()
        assert time.monotonic() - started < 10.0
        _assert_no_leak()

    def test_close_is_idempotent(self):
        pool = ShardPool(str(PROGRAM), str(EDB), "compiled", 2)
        pool.ensure_started()
        pool.close()
        pool.close()
        _assert_no_leak()


class TestServiceIntegration:
    """A parallelism job that loses its pool completes in one attempt
    with the downshift on the degradation ladder."""

    def test_shard_degradation_annotated_not_retried(self, tmp_path):
        spec = JobSpec(
            "chaos",
            "run",
            program=EXAMPLE_41_PROGRAM,
            edb=EXAMPLE_41_EDB,
            parallelism=2,
        )
        plan = FaultPlan.inject("shard_worker_crash", at=1, repeat=True)
        with plan.installed():
            with QueryService(
                workers=1,
                max_parallelism=2,
                default_deadline=120.0,
                work_dir=str(tmp_path),
            ) as svc:
                results = svc.run_batch([spec])
                stats = svc.stats()
        (result,) = results
        assert result.state == "ok"
        assert result.attempts == 1
        assert "shard-sequential" in result.degradation
        assert result.stats["shard_degraded"] is not None
        assert stats["jobs"]["degraded_shard"] == 1
        _assert_no_leak()

    def test_healed_job_carries_no_annotation(self, tmp_path):
        spec = JobSpec(
            "healed",
            "run",
            program=EXAMPLE_41_PROGRAM,
            edb=EXAMPLE_41_EDB,
            parallelism=2,
        )
        plan = FaultPlan.inject("shard_worker_crash", at=3)
        with plan.installed():
            with QueryService(
                workers=1,
                max_parallelism=2,
                default_deadline=120.0,
                work_dir=str(tmp_path),
            ) as svc:
                results = svc.run_batch([spec])
                stats = svc.stats()
        (result,) = results
        assert result.state == "ok"
        assert result.degradation == []
        assert stats["jobs"]["degraded_shard"] == 0
        _assert_no_leak()


def test_shard_recv_deadline_validation():
    with pytest.raises(ValueError):
        ShardPool(str(PROGRAM), str(EDB), "compiled", 2, recv_deadline=0)
    with pytest.raises(ValueError):
        ShardPool(str(PROGRAM), str(EDB), "compiled", 2, max_restarts=-1)


def test_shard_poll_backoff_validation():
    """Satellite: the liveness-poll backoff window must be a sane
    interval — positive floor, ceiling at or above it."""
    with pytest.raises(ValueError):
        ShardPool(str(PROGRAM), str(EDB), "compiled", 2, poll_floor=0)
    with pytest.raises(ValueError):
        ShardPool(str(PROGRAM), str(EDB), "compiled", 2, poll_floor=-0.01)
    with pytest.raises(ValueError):
        ShardPool(
            str(PROGRAM), str(EDB), "compiled", 2,
            poll_floor=0.05, poll_ceiling=0.01,
        )
    pool = ShardPool(
        str(PROGRAM), str(EDB), "compiled", 2,
        poll_floor=0.002, poll_ceiling=0.002,
    )
    assert (pool.poll_floor, pool.poll_ceiling) == (0.002, 0.002)


def test_shard_poll_backoff_engine_wiring(sequential):
    """The engine's shard_poll_floor/ceiling knobs reach the pool, and
    an aggressive backoff window still reproduces sequential (it can
    only delay noticing replies, never change them) — including across
    a healed hang, where the deadline must still fire."""
    engine = _engine(shard_poll_floor=0.0005, shard_poll_ceiling=0.02)
    pool = engine.evaluator.shard_pool()  # built lazily, not yet started
    assert (pool.poll_floor, pool.poll_ceiling) == (0.0005, 0.02)
    model = engine.run()
    _assert_identical(model, sequential)
    model = _run(
        plan=FaultPlan.inject("shard_worker_hang", at=2),
        shard_recv_deadline=0.75,
        shard_poll_floor=0.0005,
        shard_poll_ceiling=0.05,
    )
    _assert_identical(model, sequential)
    _assert_no_leak()


def test_trace_schema_knows_shard_kinds(tmp_path):
    """tools/check_trace.py accepts the supervision events a faulted
    run writes (the CI chaos job relies on this)."""
    import importlib.util
    import json as _json

    spec = importlib.util.spec_from_file_location(
        "check_trace",
        os.path.join(os.path.dirname(__file__), "..", "tools", "check_trace.py"),
    )
    check_trace = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_trace)
    path = str(tmp_path / "trace.jsonl")
    events = [
        {
            "seq": 1,
            "ts": 0.1,
            "kind": "shard.worker",
            "phase": "lost",
            "worker": "repro-shard-0",
            "reason": "crash",
            "exitcode": -9,
            "round": 1,
        },
        {
            "seq": 2,
            "ts": 0.2,
            "kind": "shard.worker",
            "phase": "respawn",
            "worker": "repro-shard-2",
            "restarts_used": 1,
            "round": 1,
        },
        {
            "seq": 3,
            "ts": 0.3,
            "kind": "shard.worker",
            "phase": "retry",
            "worker": "repro-shard-2",
            "tasks": 1,
            "round": 1,
        },
        {
            "seq": 4,
            "ts": 0.4,
            "kind": "shard.degraded",
            "reason": "lost",
            "restarts_used": 2,
            "pending_tasks": 2,
        },
    ]
    with open(path, "w") as handle:
        for event in events:
            handle.write(_json.dumps(event) + "\n")
    assert check_trace.check(path, require_kinds=["shard.worker", "shard.degraded"]) == []
    assert check_trace.check(path, require_kinds=["engine.run"]) != []
