"""Tests for the first-class join API and projection ablation flag."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import ConstraintSystem
from repro.gdb import GeneralizedRelation, GeneralizedTuple, parse_database
from repro.lrp import Lrp


def timetable(text):
    return parse_database(text)


class TestJoin:
    def test_temporal_join(self):
        db = timetable(
            """
            relation leg1[2; 0] { (60n, 60n+40) where T1 >= 0 & T2 = T1 + 40; }
            relation leg2[2; 0] { (60n+40, 60n+55) where T1 >= 0 & T2 = T1 + 15; }
            """
        )
        joined = db.relation("leg1").join(
            db.relation("leg2"), temporal_pairs=[(1, 0)]
        )
        # Columns: leg1.T1, leg1.T2(=leg2.T1), leg2.T2
        assert joined.temporal_arity == 3
        assert joined.contains_point((0, 40, 55))
        assert joined.contains_point((60, 100, 115))
        assert not joined.contains_point((0, 40, 56))

    def test_data_join(self):
        left = GeneralizedRelation(
            1,
            1,
            [
                GeneralizedTuple((Lrp(2, 0),), ("x",)),
                GeneralizedTuple((Lrp(2, 0),), ("y",)),
            ],
        )
        right = GeneralizedRelation(
            0, 1, [GeneralizedTuple((), ("x",))]
        )
        joined = left.join(right, data_pairs=[(0, 0)])
        assert joined.data_arity == 1
        assert joined.contains_point((2,), ("x",))
        assert not joined.contains_point((2,), ("y",))

    def test_join_crt_refinement(self):
        db = timetable(
            """
            relation a[1; 0] { (4n+1); }
            relation b[1; 0] { (6n+3); }
            """
        )
        joined = db.relation("a").join(db.relation("b"), temporal_pairs=[(0, 0)])
        assert joined.temporal_arity == 1
        normalized = joined.normalize()
        assert normalized.tuples[0].lrps == (Lrp(12, 9),)

    def test_join_empty_when_disjoint(self):
        db = timetable(
            """
            relation a[1; 0] { (4n); }
            relation b[1; 0] { (4n+1); }
            """
        )
        joined = db.relation("a").join(db.relation("b"), temporal_pairs=[(0, 0)])
        assert joined.is_empty()

    def test_join_no_pairs_is_product(self):
        db = timetable(
            """
            relation a[1; 0] { (2n) where T1 >= 0 & T1 < 4; }
            relation b[1; 0] { (3n) where T1 >= 0 & T1 < 4; }
            """
        )
        joined = db.relation("a").join(db.relation("b"))
        assert joined.extension(0, 5) == {(0, 0), (0, 3), (2, 0), (2, 3)}


class TestForcedAlignedProjection:
    def make_tuple(self):
        return GeneralizedTuple(
            (Lrp(4, 1), Lrp(6, 3)),
            (),
            ConstraintSystem.parse("T1 < T2 & T2 <= T1 + 9", 2),
        )

    def test_same_extension_both_paths(self):
        gt = self.make_tuple()
        fast = gt.project([0], [])
        forced = gt.project([0], [], force_aligned=True)

        def union_window(pieces):
            out = set()
            for piece in pieces:
                rel = GeneralizedRelation(1, 0, [piece])
                out |= rel.extension(-40, 40)
            return out

        assert union_window(fast) == union_window(forced)

    @given(
        st.integers(1, 6),
        st.integers(0, 5),
        st.integers(1, 6),
        st.integers(0, 5),
        st.integers(0, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_projections_agree(self, p1, o1, p2, o2, width):
        gt = GeneralizedTuple(
            (Lrp(p1, o1), Lrp(p2, o2)),
            (),
            ConstraintSystem.parse("T1 <= T2 & T2 <= T1 + %d" % width, 2),
        )
        fast = gt.project([1], [])
        forced = gt.project([1], [], force_aligned=True)

        def union_window(pieces):
            out = set()
            for piece in pieces:
                rel = GeneralizedRelation(1, 0, [piece])
                out |= rel.extension(-30, 30)
            return out

        assert union_window(fast) == union_window(forced)

    def test_forced_path_produces_aligned_periods(self):
        gt = self.make_tuple()
        forced = gt.project([0], [], force_aligned=True)
        assert all(piece.lrps[0].period in (12, 6, 4, 3, 2, 1) for piece in forced)
