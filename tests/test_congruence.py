"""Unit tests for repro.lrp.congruence."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lrp.congruence import (
    crt,
    crt_all,
    divisors,
    egcd,
    lcm,
    lcm_all,
    modular_inverse,
    solve_congruence,
)


class TestEgcd:
    def test_textbook(self):
        assert egcd(240, 46) == (2, -9, 47)

    def test_zero_cases(self):
        assert egcd(0, 0)[0] == 0
        assert egcd(0, 5)[0] == 5
        assert egcd(5, 0)[0] == 5

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12
        assert lcm(7, 7) == 7

    def test_lcm_all(self):
        assert lcm_all([]) == 1
        assert lcm_all([2, 3, 4]) == 12

    @given(st.integers(1, 1000), st.integers(1, 1000))
    def test_divides(self, a, b):
        m = lcm(a, b)
        assert m % a == 0 and m % b == 0
        assert m == a * b // math.gcd(a, b)


class TestModularInverse:
    def test_basic(self):
        assert modular_inverse(3, 7) == 5

    def test_not_invertible(self):
        assert modular_inverse(2, 4) is None

    @given(st.integers(1, 500), st.integers(2, 500))
    def test_inverse_property(self, a, m):
        inv = modular_inverse(a, m)
        if math.gcd(a, m) == 1:
            assert inv is not None
            assert a * inv % m == 1
        else:
            assert inv is None


class TestSolveCongruence:
    def test_basic(self):
        assert solve_congruence(4, 2, 6) == (2, 3)

    def test_no_solution(self):
        assert solve_congruence(2, 1, 4) is None

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(1, 100))
    def test_solutions_verify(self, a, b, m):
        result = solve_congruence(a, b, m)
        brute = [x for x in range(m) if (a * x - b) % m == 0]
        if result is None:
            assert brute == []
        else:
            x0, step = result
            assert (a * x0 - b) % m == 0
            assert sorted(x % m for x in range(x0, x0 + m, step)) == brute


class TestCrt:
    def test_textbook(self):
        assert crt(3, 5, 5, 7) == (33, 35)

    def test_incompatible(self):
        assert crt(0, 2, 1, 4) is None

    def test_non_coprime_compatible(self):
        r, m = crt(2, 4, 0, 6)
        assert m == 12
        assert r % 4 == 2 and r % 6 == 0

    @given(
        st.integers(0, 50), st.integers(1, 50), st.integers(0, 50), st.integers(1, 50)
    )
    def test_agrees_with_enumeration(self, r1, m1, r2, m2):
        result = crt(r1, m1, r2, m2)
        combined = lcm(m1, m2)
        brute = [
            x for x in range(combined) if x % m1 == r1 % m1 and x % m2 == r2 % m2
        ]
        if result is None:
            assert brute == []
        else:
            r, m = result
            assert m == combined
            assert brute == [r]

    def test_crt_all(self):
        assert crt_all([]) == (0, 1)
        r, m = crt_all([(1, 2), (2, 3), (3, 5)])
        assert m == 30
        assert r % 2 == 1 and r % 3 == 2 and r % 5 == 3

    def test_crt_all_inconsistent(self):
        assert crt_all([(0, 2), (1, 4)]) is None


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(13) == [1, 13]

    @given(st.integers(1, 2000))
    def test_complete(self, n):
        ds = divisors(n)
        assert ds == sorted(d for d in range(1, n + 1) if n % d == 0)
