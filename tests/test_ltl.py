"""Tests for LTL over ultimately periodic words (paper Section 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrp import EventuallyPeriodicSet
from repro.omega.ltl import (
    And,
    Atom,
    F,
    G,
    Implies,
    Next,
    Not,
    Or,
    R,
    TrueConst,
    Until,
    eps_lasso,
    evaluate,
    holds_at,
    query_eps,
)

P = Atom("p")
Q = Atom("q")


def word(*flags):
    """Letters from 'p'/'q'/'pq'/'' strings."""
    return [frozenset(c for c in flag) for flag in flags]


class TestBasics:
    def test_atom(self):
        values = evaluate(P, word("p", ""), word("p"))
        assert values == [True, False, True]

    def test_boolean(self):
        prefix, loop = word("pq"), word("p", "")
        assert evaluate(And(P, Q), prefix, loop) == [True, False, False]
        assert evaluate(Or(P, Q), prefix, loop) == [True, True, False]
        assert evaluate(Not(P), prefix, loop) == [False, False, True]
        assert evaluate(TrueConst(), prefix, loop) == [True, True, True]

    def test_next_wraps_into_loop(self):
        # Word: p, then loop (q, empty): successors 0->1, 1->2, 2->1.
        prefix, loop = word("p"), word("q", "")
        assert evaluate(Next(Q), prefix, loop) == [True, False, True]

    def test_until(self):
        # p U q on word (p, p, q-loop).
        prefix, loop = word("p", "p"), word("q")
        assert evaluate(Until(P, Q), prefix, loop) == [True, True, True]

    def test_until_fails_without_witness(self):
        prefix, loop = word("p"), word("p")
        assert evaluate(Until(P, Q), prefix, loop) == [False, False]

    def test_eventually_and_always(self):
        prefix, loop = word("", ""), word("p")
        assert evaluate(F(P), prefix, loop) == [True, True, True]
        assert evaluate(G(P), prefix, loop) == [False, False, True]

    def test_release(self):
        # q R p: p must hold up to and including the first q (or forever).
        prefix, loop = word("p", "pq"), word("")
        values = evaluate(R(Q, P), prefix, loop)
        assert values[0] is True

    def test_empty_loop_rejected(self):
        with pytest.raises(ValueError):
            evaluate(P, word("p"), [])

    def test_holds_at_folds_positions(self):
        prefix, loop = word("p"), word("q", "")
        # Positions 1, 3, 5, … are 'q'.
        assert holds_at(Q, prefix, loop, 1)
        assert holds_at(Q, prefix, loop, 3)
        assert not holds_at(Q, prefix, loop, 4)


letters = st.sampled_from([frozenset(), frozenset("p"), frozenset("q"), frozenset("pq")])
lassos = st.tuples(
    st.lists(letters, max_size=4), st.lists(letters, min_size=1, max_size=4)
)


@st.composite
def formulas(draw, depth=3):
    if depth == 0:
        return draw(st.sampled_from([P, Q, TrueConst()]))
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return draw(st.sampled_from([P, Q]))
    if kind == 1:
        return Not(draw(formulas(depth=depth - 1)))
    if kind == 2:
        return And(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    if kind == 3:
        return Or(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    if kind == 4:
        return Next(draw(formulas(depth=depth - 1)))
    if kind == 5:
        return Until(draw(formulas(depth=depth - 1)), draw(formulas(depth=depth - 1)))
    return F(draw(formulas(depth=depth - 1)))


class TestLaws:
    @given(formulas(), lassos)
    @settings(max_examples=60, deadline=None)
    def test_g_is_not_f_not(self, phi, lasso):
        prefix, loop = lasso
        assert evaluate(G(phi), prefix, loop) == evaluate(
            Not(F(Not(phi))), prefix, loop
        )

    @given(formulas(), formulas(), lassos)
    @settings(max_examples=60, deadline=None)
    def test_until_unrolling(self, phi, psi, lasso):
        prefix, loop = lasso
        lhs = evaluate(Until(phi, psi), prefix, loop)
        rhs = evaluate(
            Or(psi, And(phi, Next(Until(phi, psi)))), prefix, loop
        )
        assert lhs == rhs

    @given(formulas(), formulas(), lassos)
    @settings(max_examples=60, deadline=None)
    def test_f_distributes_over_or(self, phi, psi, lasso):
        prefix, loop = lasso
        assert evaluate(F(Or(phi, psi)), prefix, loop) == [
            a or b
            for a, b in zip(
                evaluate(F(phi), prefix, loop), evaluate(F(psi), prefix, loop)
            )
        ]

    @given(formulas(), lassos)
    @settings(max_examples=60, deadline=None)
    def test_truth_against_unrolled_semantics(self, phi, lasso):
        # Reference semantics: evaluate by brute force on a long
        # unrolled finite word with periodic lookups.
        prefix, loop = lasso
        total = len(prefix) + len(loop)
        horizon = total + 4 * len(loop) + 8

        def letter(k):
            if k < len(prefix):
                return prefix[k]
            return loop[(k - len(prefix)) % len(loop)]

        def brute(node, k):
            if k >= horizon:  # deep positions are periodic; fold back
                k = len(prefix) + (k - len(prefix)) % len(loop)
            if isinstance(node, Atom):
                return node.name in letter(k)
            if isinstance(node, TrueConst):
                return True
            if isinstance(node, Not):
                return not brute(node.sub, k)
            if isinstance(node, And):
                return brute(node.left, k) and brute(node.right, k)
            if isinstance(node, Or):
                return brute(node.left, k) or brute(node.right, k)
            if isinstance(node, Next):
                return brute(node.sub, k + 1)
            if isinstance(node, Until):
                # On an ultimately periodic word a witness, if any,
                # appears within one extra loop beyond the horizon.
                for j in range(k, horizon + len(loop)):
                    if brute(node.right, j):
                        return all(brute(node.left, i) for i in range(k, j))
                return False
            raise TypeError(node)

        values = evaluate(phi, prefix, loop)
        for k in range(total):
            assert values[k] == brute(phi, k), (str(phi), k)


class TestDatabaseQueries:
    def test_query_on_eps(self):
        eps = EventuallyPeriodicSet(threshold=2, period=3, residues=[2], prefix=[0])
        # p at 0, 2, 5, 8, …
        assert query_eps(P, eps)
        assert not query_eps(P, eps, position=1)
        assert query_eps(F(P), eps, position=1)
        assert query_eps(G(F(P)), eps)          # infinitely often p
        assert not query_eps(F(G(P)), eps)      # eventually always p

    def test_eps_lasso_shape(self):
        eps = EventuallyPeriodicSet(threshold=1, period=2, residues=[1], prefix=[0])
        prefix, loop = eps_lasso(eps)
        assert prefix == [frozenset("p")]
        assert loop == [frozenset("p"), frozenset()]

    def test_implies(self):
        eps = EventuallyPeriodicSet(period=2, residues=[0])
        # Always (p implies X not p): p at evens only.
        formula = G(Implies(P, Next(Not(P))))
        assert query_eps(formula, eps)
