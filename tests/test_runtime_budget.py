"""Resource budgets: every dimension trips as a typed
``BudgetExceededError`` whose partial model stays queryable."""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.datalog1s import minimal_model, parse_datalog1s
from repro.gdb import parse_database
from repro.runtime.budget import EvaluationBudget
from repro.templog import parse_templog, templog_minimal_model
from repro.templog.query import parse_goal, yes_no
from repro.util.errors import (
    BudgetExceededError,
    PartialResultError,
    ReproError,
)

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
relation seed[1; 0] { (n) where T1 = 0; }
"""

# Example 4.1 of the paper: terminates at constraint safety.
PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

# Diverging program: never becomes constraint safe.
DIVERGING = """
p(t) <- seed(t).
p(t + 5) <- p(t).
"""

D1S = """
train(5; liege).
train(t + 40; liege) <- train(t; liege).
"""

TEMPLOG = """
next^5 go.
always (next^40 go <- go).
"""


def make_engine(program_text=PROGRAM, **kwargs):
    return DeductiveEngine(
        parse_program(program_text), parse_database(EDB), **kwargs
    )


class TestBudgetConfig:
    def test_unlimited(self):
        assert not EvaluationBudget().limited()
        assert EvaluationBudget(max_rounds=1).limited()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EvaluationBudget(deadline_seconds=-1)
        with pytest.raises(ValueError):
            EvaluationBudget(max_rounds=-3)

    def test_meter_deadline_fake_clock(self):
        ticks = iter([0.0, 0.5, 1.5, 1.5])
        meter = EvaluationBudget(deadline_seconds=1.0).start(
            clock=lambda: next(ticks)
        )
        meter.check_deadline()  # 0.5s elapsed: fine
        with pytest.raises(BudgetExceededError) as info:
            meter.check_deadline()  # 1.5s elapsed
        assert info.value.limit == "deadline_seconds"

    def test_meter_counters_and_snapshot(self):
        meter = EvaluationBudget(max_derived=5).start(clock=lambda: 0.0)
        meter.charge_derived(3)
        meter.charge_accepted(2)
        meter.charge_round()
        snapshot = meter.snapshot()
        assert snapshot["rounds"] == 1
        assert snapshot["accepted"] == 2
        assert snapshot["derived"] == 3
        with pytest.raises(BudgetExceededError) as info:
            meter.charge_derived(3)
        assert info.value.limit == "max_derived"


class TestEngineBudgets:
    def test_deadline_zero_example_41(self):
        """The ISSUE acceptance test: a deadline of 0 on Example 4.1
        raises a typed error whose partial model is still queryable
        over a window."""
        engine = make_engine()
        with pytest.raises(BudgetExceededError) as info:
            engine.run(budget=EvaluationBudget(deadline_seconds=0))
        error = info.value
        assert isinstance(error, PartialResultError)
        assert isinstance(error, ReproError)
        assert error.limit == "deadline_seconds"
        assert error.partial_model is not None
        assert "problems" in error.partial_model.predicates()
        # queryable even though (possibly) empty
        window = error.partial_model.extension("problems", 0, 200)
        assert isinstance(window, (set, frozenset, list))
        assert error.stats is not None
        assert error.stats.budget_exceeded

    def test_max_rounds_diverging(self):
        engine = make_engine(DIVERGING, patience=50)
        with pytest.raises(BudgetExceededError) as info:
            engine.run(budget=EvaluationBudget(max_rounds=3))
        error = info.value
        assert error.limit == "max_rounds"
        assert error.stats.rounds == 4  # tripped entering round 4
        # the partial model holds what the first rounds derived
        assert error.partial_model.relation("p").contains_point((0,), ())

    def test_max_tuples(self):
        engine = make_engine(DIVERGING, patience=50)
        with pytest.raises(BudgetExceededError) as info:
            engine.run(budget=EvaluationBudget(max_tuples=2))
        assert info.value.limit == "max_tuples"
        assert info.value.partial_model is not None

    def test_max_derived(self):
        engine = make_engine(DIVERGING, patience=50)
        with pytest.raises(BudgetExceededError) as info:
            engine.run(budget=EvaluationBudget(max_derived=2))
        assert info.value.limit == "max_derived"

    def test_generous_budget_is_invisible(self):
        budget = EvaluationBudget(
            deadline_seconds=3600, max_rounds=10_000, max_tuples=10_000,
            max_derived=100_000,
        )
        model = make_engine().run(budget=budget)
        assert model.stats.constraint_safe
        assert not model.stats.budget_exceeded
        unbudgeted = make_engine().run()
        assert model.stats.rounds == unbudgeted.stats.rounds
        assert (
            model.stats.new_tuples_per_round
            == unbudgeted.stats.new_tuples_per_round
        )

    def test_trace_respects_budget(self):
        engine = make_engine(DIVERGING, patience=50)
        rounds = []
        with pytest.raises(BudgetExceededError):
            for round_number, _ in engine.trace(
                budget=EvaluationBudget(max_rounds=2)
            ):
                rounds.append(round_number)
        assert rounds == [1, 2]


class TestPeriodicModelBudgets:
    def test_datalog1s_budget(self):
        program = parse_datalog1s(D1S)
        with pytest.raises(BudgetExceededError) as info:
            minimal_model(program, budget=EvaluationBudget(max_rounds=1))
        assert info.value.partial_model is not None
        # unconstrained run still fine
        model = minimal_model(program)
        assert model.holds("train", 45, ("liege",))

    def test_templog_budget_strips_auxiliaries(self):
        program = parse_templog(TEMPLOG)
        with pytest.raises(BudgetExceededError) as info:
            templog_minimal_model(program, budget=EvaluationBudget(max_rounds=1))
        partial = info.value.partial_model
        assert partial is not None
        assert all(not name.startswith("_ev") for name in partial.predicates())

    def test_templog_goal_deadline(self):
        model = templog_minimal_model(parse_templog(TEMPLOG))
        goal = parse_goal("<>(go)")
        assert yes_no(model, goal)
        with pytest.raises(BudgetExceededError):
            yes_no(model, goal, budget=EvaluationBudget(deadline_seconds=0))
