"""Tests for the KSW90 first-order query language."""

import pytest

from repro.fo import evaluate_query, parse_formula
from repro.fo.ast import FoExists, FoNot, free_variables
from repro.gdb import parse_database
from repro.util.errors import EvaluationError, ParseError

TRAIN_DB = """
relation train[2; 2] {
  (40n+5, 40n+65; "Liege", "Brussels") where T1 >= 0 & T2 = T1 + 60;
  (60n+10, 60n+100; "Liege", "Antwerp") where T1 >= 0 & T2 = T1 + 90;
}
"""


def db():
    return parse_database(TRAIN_DB)


class TestParser:
    def test_free_variables(self):
        formula = parse_formula('exists t2 (train(t1, t2; "Liege", C))')
        assert free_variables(formula) == (("t1",), ("C",))

    def test_nested(self):
        formula = parse_formula(
            "exists t (p(t) and not exists u (q(u) and u < t))"
        )
        assert isinstance(formula, FoExists)

    def test_forall_sugar(self):
        formula = parse_formula("forall t (p(t))")
        assert free_variables(formula) == ((), ())

    def test_precedence_or_and(self):
        formula = parse_formula("p(t) and q(t) or r(t)")
        # or binds last
        from repro.fo.ast import FoOr

        assert isinstance(formula, FoOr)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_formula("p(t) q(t)")


class TestAtoms:
    def test_atom_answers(self):
        answers = evaluate_query(db(), 'train(t1, t2; "Liege", "Brussels")')
        assert answers.temporal_vars == ("t1", "t2")
        assert answers.relation.contains_point((5, 65))
        assert not answers.relation.contains_point((5, 66))

    def test_data_variable_column(self):
        answers = evaluate_query(db(), 'exists t2 (train(t1, t2; "Liege", C))')
        assert answers.data_vars == ("C",)
        assert answers.relation.contains_point((45,), ("Brussels",))
        assert answers.relation.contains_point((10,), ("Antwerp",))
        assert not answers.relation.contains_point((10,), ("Brussels",))

    def test_temporal_constant_selection(self):
        answers = evaluate_query(db(), 'train(5, t2; "Liege", "Brussels")')
        assert answers.temporal_vars == ("t2",)
        assert answers.relation.contains_point((65,))
        assert not answers.relation.contains_point((105,))

    def test_shifted_argument(self):
        # u such that a train leaves at u + 10.
        answers = evaluate_query(db(), 'train(u + 10, t2; "Liege", "Brussels")')
        # u + 10 = 45 → u = 35
        projected = evaluate_query(
            db(), 'exists t2 (train(u + 10, t2; "Liege", "Brussels"))'
        )
        assert projected.relation.contains_point((35,))
        assert not projected.relation.contains_point((45,))

    def test_schema_mismatch(self):
        with pytest.raises(EvaluationError):
            evaluate_query(db(), "train(t; X, Y)")

    def test_comparison_alone(self):
        answers = evaluate_query(db(), "t < u")
        assert answers.relation.contains_point((3, 9))
        assert not answers.relation.contains_point((9, 3))


class TestConnectives:
    def test_conjunction_join(self):
        # Trains from Liege to Brussels and to Antwerp leaving at the
        # same minute t.
        answers = evaluate_query(
            db(),
            'exists b (train(t, b; "Liege", "Brussels")) and '
            'exists a (train(t, a; "Liege", "Antwerp"))',
        )
        # Brussels trains at 40n+5 (t>=0), Antwerp at 60n+10 (t>=0):
        # 40n+5 ∩ 60n+10 = empty (5 mod 20 vs 10 mod 20).
        assert answers.relation.is_empty()

    def test_conjunction_with_comparison(self):
        answers = evaluate_query(
            db(),
            'exists b (train(t, b; "Liege", "Brussels")) and t >= 0 and t < 90',
        )
        assert answers.extension(-10, 200) == {(5,), (45,), (85,)}

    def test_disjunction(self):
        answers = evaluate_query(
            db(),
            'exists b (train(t, b; "Liege", "Brussels")) or '
            'exists a (train(t, a; "Liege", "Antwerp"))',
        )
        for t in (5, 45, 10, 70):
            assert answers.relation.contains_point((t,))
        assert not answers.relation.contains_point((6,))

    def test_negation_temporal(self):
        answers = evaluate_query(
            db(),
            'not exists b (train(t, b; "Liege", "Brussels"))',
        )
        assert answers.relation.contains_point((6,))
        assert answers.relation.contains_point((-35,))
        assert not answers.relation.contains_point((45,))

    def test_double_negation(self):
        base = evaluate_query(db(), 'exists b (train(t, b; "Liege", "Brussels"))')
        doubled = evaluate_query(
            db(),
            'not not exists b (train(t, b; "Liege", "Brussels"))',
        )
        assert base.relation.equivalent(doubled.relation)

    def test_negation_with_data(self):
        answers = evaluate_query(
            db(), 'not exists t1, t2 (train(t1, t2; "Liege", C))'
        )
        # Active domain: Liege, Brussels, Antwerp.  Brussels and
        # Antwerp receive trains; only Liege does not.
        assert answers.relation.contains_point((), ("Liege",))
        assert not answers.relation.contains_point((), ("Brussels",))
        assert not answers.relation.contains_point((), ("Antwerp",))

    def test_yes_no_queries(self):
        yes = evaluate_query(
            db(), 'exists t1, t2 (train(t1, t2; "Liege", "Brussels"))'
        )
        assert yes.is_true()
        no = evaluate_query(
            db(), 'exists t1, t2 (train(t1, t2; "Brussels", "Liege"))'
        )
        assert not no.is_true()

    def test_forall(self):
        # Every Brussels departure is at time >= 0 (true by the
        # database constraint).
        answers = evaluate_query(
            db(),
            "forall t (not exists u (train(t, u; \"Liege\", \"Brussels\")) "
            "or t >= 0)",
        )
        assert answers.is_true()

    def test_forall_false(self):
        answers = evaluate_query(
            db(),
            "forall t (exists u (train(t, u; \"Liege\", \"Brussels\")))",
        )
        assert not answers.is_true()


class TestAgainstGroundEnumeration:
    def test_negation_window_cross_check(self):
        database = db()
        answers = evaluate_query(
            database,
            'not exists b (train(t, b; "Liege", "Brussels")) and t >= 0 and t < 50',
        )
        brussels = {
            flat[0]
            for flat in database.relation("train").extension(0, 200)
            if flat[2:] == ("Liege", "Brussels")
        }
        expected = {(t,) for t in range(0, 50) if t not in brussels}
        assert answers.extension(-10, 60) == expected

    def test_first_train_after(self):
        # The first Brussels train at or after minute 50: t with a
        # departure and no earlier departure in [50, t).
        query = (
            'exists b (train(t, b; "Liege", "Brussels")) and t >= 50 and '
            "not exists u (exists c (train(u, c; \"Liege\", \"Brussels\")) "
            "and u >= 50 and u < t)"
        )
        answers = evaluate_query(db(), query)
        assert answers.extension(0, 500) == {(85,)}


class TestWithEngineModel:
    def test_query_over_idb(self):
        from repro.core import DeductiveEngine, parse_program

        edb = parse_database(
            """
            relation course[2; 1] {
              (168n+8, 168n+10; "database") where T2 = T1 + 2;
            }
            """
        )
        program = parse_program(
            """
            problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
            problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
            """
        )
        model = DeductiveEngine(program, edb).run()
        answers = evaluate_query(
            edb,
            'problems(t, u; "database") and t >= 0 and t < 60',
            extra_relations={"problems": model.relation("problems")},
        )
        assert answers.extension(0, 100) == {(10, 12), (34, 36), (58, 60)}
