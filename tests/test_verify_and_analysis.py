"""Tests for model verification and relation statistics."""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.core.verify import verify_model
from repro.gdb import parse_database
from repro.gdb.analysis import analyze


def example_41():
    edb = parse_database(
        """
        relation course[2; 1] {
          (168n+8, 168n+10; "database") where T2 = T1 + 2;
        }
        """
    )
    program = parse_program(
        """
        problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
        problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
        """
    )
    return program, edb


class TestVerifyModel:
    def test_correct_model_verifies(self):
        program, edb = example_41()
        model = DeductiveEngine(program, edb).run()
        report = verify_model(program, edb, model, window=(0, 400))
        assert report.ok()
        assert report.stable and report.window_sound and report.window_complete
        assert "verified" in str(report)

    def test_truncated_model_fails_stability(self):
        program, edb = example_41()
        model = DeductiveEngine(program, edb).run()
        # Sabotage: drop half the closed form.
        from repro.core.engine import Model
        from repro.gdb.relation import GeneralizedRelation

        problems = model.relation("problems")
        broken_rel = GeneralizedRelation(
            problems.temporal_arity,
            problems.data_arity,
            problems.tuples[:3],
        )
        broken = Model({"problems": broken_rel}, model.stats, edb=edb)
        report = verify_model(program, edb, broken, window=(0, 400))
        assert not report.ok()
        assert not report.stable or not report.window_complete

    def test_bloated_model_fails_support(self):
        program, edb = example_41()
        model = DeductiveEngine(program, edb).run()
        from repro.core.engine import Model
        from repro.gdb import GeneralizedTuple
        from repro.lrp import Lrp

        extra = GeneralizedTuple(
            (Lrp(168, 9), Lrp(168, 11)), ("database",)
        )
        bloated_rel = model.relation("problems").with_tuple(extra)
        bloated = Model({"problems": bloated_rel}, model.stats, edb=edb)
        report = verify_model(program, edb, bloated, window=(0, 300))
        assert not report.window_sound
        assert report.unsupported_atoms
        assert "FAILED" in str(report)

    def test_negation_program_gets_stability_check(self):
        edb = parse_database("relation sched[1; 0] { (10n) where T1 >= 0; }")
        program = parse_program("quiet(t) <- not sched(t), t >= 0, t < 30.")
        model = DeductiveEngine(program, edb).run()
        report = verify_model(program, edb, model, window=(0, 30))
        # Ground oracle cannot run negation; stability must still hold.
        assert report.stable


class TestAnalyze:
    def test_example_41_statistics(self):
        program, edb = example_41()
        model = DeductiveEngine(program, edb).run()
        stats = analyze(model.relation("problems"))
        assert stats.tuple_count == 7
        assert stats.signature_count == 7
        assert stats.data_vectors == 1
        assert stats.column_periods == (168, 168)
        assert stats.common_period == 168
        assert stats.densities == (7 / 168, 7 / 168)
        assert stats.bounded_columns == (False, False)

    def test_bounded_detection(self):
        db = parse_database(
            "relation p[1; 0] { (2n) where T1 >= 0 & T1 < 20; }"
        )
        stats = analyze(db.relation("p"))
        assert stats.bounded_columns == (True,)
        assert stats.densities == (0.5,)  # residue {0} of period 2

    def test_empty_relation(self):
        from repro.gdb.relation import GeneralizedRelation

        stats = analyze(GeneralizedRelation.empty(2, 1))
        assert stats.tuple_count == 0
        assert stats.common_period == 1
        assert stats.densities == (0.0, 0.0)
        assert stats.bounded_columns == (False, False)

    def test_str_is_informative(self):
        db = parse_database("relation p[1; 0] { (6n+1); (6n+4); }")
        text = str(analyze(db.relation("p")))
        assert "2 tuples" in text
        assert "lcm 6" in text
