"""Tests for the Chomicki–Imieliński Datalog1S implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog1s import (
    Model1S,
    datalog1s_model_to_relation,
    minimal_model,
    parse_datalog1s,
    relation_to_datalog1s,
)
from repro.datalog1s.translate import (
    eventually_periodic_to_clauses,
    relation_extension_as_eps,
)
from repro.core.ast import Program
from repro.gdb import parse_database
from repro.lrp import EventuallyPeriodicSet
from repro.util.errors import SchemaError

TRAINS = """
train_leaves(5; liege, brussels).
train_leaves(t + 40; liege, brussels) <- train_leaves(t; liege, brussels).
train_arrives(t + 60; liege, brussels) <- train_leaves(t; liege, brussels).
"""


def brute_force_model(program, horizon):
    """Reference semantics: naive ground fixpoint on [0, horizon)."""
    facts = {}

    def add(key, t):
        facts.setdefault(key, set()).add(t)

    for head_offset, body, head in program.normalized_clauses():
        if not body:
            data = tuple(term.value for term in head.data_args)
            add((head.predicate, data), head_offset)
    changed = True
    domain = sorted(program.data_constants(), key=repr)
    while changed:
        changed = False
        for head_offset, body, head in program.normalized_clauses():
            if not body:
                continue
            import itertools

            variables = sorted(
                {
                    term.name
                    for atom_data in [head.data_args]
                    + [d for (_, __, d, ___) in body]
                    for term in atom_data
                    if term.is_variable()
                }
            )
            for values in itertools.product(domain, repeat=len(variables)):
                theta = dict(zip(variables, values))

                def ground(terms):
                    return tuple(
                        theta[x.name] if x.is_variable() else x.value
                        for x in terms
                    )

                head_key = (head.predicate, ground(head.data_args))
                for base in range(horizon):
                    head_time = base + head_offset
                    if head_time >= horizon:
                        break
                    if head_time in facts.get(head_key, set()):
                        continue
                    if all(
                        ((base + off) in facts.get((p, ground(d)), set()))
                        != neg
                        for (p, off, d, neg) in body
                    ):
                        add(head_key, head_time)
                        changed = True
        for head_time, body, head in program.ground_rules():
            data = tuple(term.value for term in head.data_args)
            key = (head.predicate, data)
            if head_time < horizon and head_time not in facts.get(key, set()):
                if all(
                    (t in facts.get((p, tuple(x.value for x in d)), set()))
                    != neg
                    for (p, t, d, neg) in body
                ):
                    add(key, head_time)
                    changed = True
    return facts


class TestValidation:
    def test_accepts_paper_example(self):
        program = parse_datalog1s(TRAINS)
        assert len(program) == 3
        assert program.is_forward()

    def test_rejects_two_temporal_args(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t, u) <- q(t).")

    def test_rejects_constraints(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t) <- q(t), t >= 0.")

    def test_rejects_negative_fact_time(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(-3).")

    def test_rejects_predecessor(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t - 1) <- q(t).")

    def test_rejects_two_temporal_variables(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t) <- q(u).")

    def test_rejects_nonground_fact(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t).")

    def test_backward_is_not_forward(self):
        program = parse_datalog1s("p(t) <- q(t + 2). q(8).")
        assert not program.is_forward()

    def test_ground_rule_allowed(self):
        program = parse_datalog1s("p(3) <- q(1). q(1).")
        assert program.ground_rules()


class TestMinimalModelForward:
    def test_paper_trains(self):
        program = parse_datalog1s(TRAINS)
        model = minimal_model(program)
        leaves = model.set_of("train_leaves", ("liege", "brussels"))
        assert leaves == EventuallyPeriodicSet(
            threshold=5, period=40, residues=[5]
        )
        arrives = model.set_of("train_arrives", ("liege", "brussels"))
        assert 65 in arrives and 105 in arrives
        assert 64 not in arrives
        assert arrives.period == 40

    def test_single_fact(self):
        model = minimal_model(parse_datalog1s("p(7)."))
        assert model.set_of("p") == EventuallyPeriodicSet.from_finite([7])

    def test_interleaved_periods(self):
        program = parse_datalog1s(
            """
            p(0).
            p(t + 3) <- p(t).
            q(t + 1) <- p(t).
            """
        )
        model = minimal_model(program)
        assert model.set_of("p") == EventuallyPeriodicSet(period=3, residues=[0])
        assert model.set_of("q") == EventuallyPeriodicSet(
            threshold=1, period=3, residues=[1]
        )

    def test_zero_delay_cycle(self):
        program = parse_datalog1s(
            """
            a(0).
            b(t) <- a(t).
            c(t) <- b(t).
            a(t + 2) <- c(t).
            """
        )
        model = minimal_model(program)
        evens = EventuallyPeriodicSet(period=2, residues=[0])
        assert model.set_of("a") == evens
        assert model.set_of("b") == evens
        assert model.set_of("c") == evens

    def test_conjunction(self):
        program = parse_datalog1s(
            """
            a(0). a(t + 2) <- a(t).
            b(0). b(t + 3) <- b(t).
            both(t) <- a(t), b(t).
            """
        )
        model = minimal_model(program)
        assert model.set_of("both") == EventuallyPeriodicSet(
            period=6, residues=[0]
        )

    def test_data_variables(self):
        program = parse_datalog1s(
            """
            p(0; x). p(1; y).
            p(t + 4; A) <- p(t; A).
            """
        )
        model = minimal_model(program)
        assert model.set_of("p", ("x",)) == EventuallyPeriodicSet(
            period=4, residues=[0]
        )
        assert model.set_of("p", ("y",)) == EventuallyPeriodicSet(
            period=4, residues=[1]
        )

    def test_ground_rule_fires(self):
        program = parse_datalog1s("q(1). p(3) <- q(1).")
        model = minimal_model(program)
        assert model.holds("p", 3)

    def test_ground_rule_blocked(self):
        program = parse_datalog1s("q(2). p(3) <- q(1).")
        model = minimal_model(program)
        assert not model.holds("p", 3)

    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(1, 5)),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_agrees_with_brute_force(self, seeds):
        text = []
        for index, (start, step) in enumerate(seeds):
            text.append("p%d(%d)." % (index, start))
            text.append("p%d(t + %d) <- p%d(t)." % (index, step, index))
        text.append(
            "meet(t) <- %s."
            % ", ".join("p%d(t)" % i for i in range(len(seeds)))
        )
        program = parse_datalog1s("\n".join(text))
        model = minimal_model(program)
        horizon = 120
        brute = brute_force_model(program, horizon)
        for key, times in brute.items():
            pred, data = key
            eps = model.set_of(pred, data)
            margin = max(step for (_, step) in seeds) + 7
            assert set(eps.window(0, horizon - margin)) == {
                t for t in times if t < horizon - margin
            }


class TestMinimalModelBackward:
    def test_pure_backward_chain(self):
        # p(t) <- p(t+1) plus p at 40n+7: p should become the
        # down-closure [0, inf) since p is unbounded above.
        program = parse_datalog1s(
            """
            q(7).
            q(t + 40) <- q(t).
            p(t) <- q(t).
            p(t) <- p(t + 1).
            """
        )
        model = minimal_model(program)
        assert model.set_of("p").is_all()

    def test_backward_from_finite(self):
        program = parse_datalog1s(
            """
            q(9).
            p(t) <- q(t).
            p(t) <- p(t + 1).
            """
        )
        model = minimal_model(program)
        assert model.set_of("p") == EventuallyPeriodicSet.from_finite(range(10))

    def test_backward_shifted_copy(self):
        program = parse_datalog1s(
            """
            q(4).
            q(t + 6) <- q(t).
            p(t) <- q(t + 2).
            """
        )
        model = minimal_model(program)
        assert model.set_of("p") == EventuallyPeriodicSet(
            threshold=2, period=6, residues=[2]
        )


class TestTranslate:
    def test_eps_to_clauses_roundtrip(self):
        eps = EventuallyPeriodicSet(
            threshold=6, period=5, residues=[2, 4], prefix=[0, 3]
        )
        clauses = eventually_periodic_to_clauses("p", eps)
        program = parse_datalog1s(
            "\n".join("%s" % clause for clause in clauses)
        )
        model = minimal_model(program)
        assert model.set_of("p") == eps

    @given(
        st.builds(
            EventuallyPeriodicSet,
            st.integers(0, 8),
            st.integers(1, 8),
            st.sets(st.integers(0, 7), max_size=4),
            st.sets(st.integers(0, 7), max_size=4),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_eps_roundtrip_random(self, eps):
        clauses = eventually_periodic_to_clauses("p", eps)
        if not clauses:
            assert eps.is_empty()
            return
        program = Program(tuple(clauses))
        from repro.datalog1s.ast import Datalog1SProgram

        model = minimal_model(Datalog1SProgram(program))
        assert model.set_of("p") == eps

    def test_relation_to_datalog1s(self):
        db = parse_database(
            """
            relation sched[1; 1] {
              (40n+5; "x") where T1 >= 5;
              (7; "x");
            }
            """
        )
        program = relation_to_datalog1s(db.relation("sched"), "sched")
        model = minimal_model(program)
        eps = model.set_of("sched", ("x",))
        for t in (5, 7, 45, 85):
            assert t in eps
        assert 6 not in eps and 44 not in eps

    def test_relation_extension_as_eps_negative_clipped(self):
        db = parse_database("relation p[1; 0] { (10n+3); }")
        eps = relation_extension_as_eps(db.relation("p"))
        assert eps == EventuallyPeriodicSet(period=10, residues=[3])
        assert -7 not in eps  # naturals only

    def test_model_to_relation(self):
        program = parse_datalog1s(TRAINS)
        model = minimal_model(program)
        relation = datalog1s_model_to_relation(model, "train_leaves")
        assert relation.contains_point((45,), ("liege", "brussels"))
        assert not relation.contains_point((46,), ("liege", "brussels"))
        assert not relation.contains_point((-35,), ("liege", "brussels"))

    def test_full_roundtrip_relation(self):
        db = parse_database(
            "relation p[1; 0] { (6n+1) where T1 >= 0; (9) where T1 = 9; }"
        )
        relation = db.relation("p")
        program = relation_to_datalog1s(relation, "p")
        model = minimal_model(program)
        back = datalog1s_model_to_relation(model, "p")
        window_original = {
            t for (t,) in relation.extension(0, 80)
        }
        window_back = {t for (t,) in back.extension(0, 80)}
        assert window_back == window_original

    def test_rejects_wrong_arity(self):
        db = parse_database("relation p[2; 0] { (n, n); }")
        with pytest.raises(SchemaError):
            relation_to_datalog1s(db.relation("p"))
