"""Parallel sharded rounds and the cross-round coverage cache.

The contract under test is exact reproduction: ``parallelism > 1``
shards the firings of each T_GP round across worker processes, and
the merged result — model, per-round stats, checkpoint payloads — is
*identical* to the sequential run, not merely equivalent.  The
Hypothesis property drives that over random stratified programs; the
unit tests pin the coverage-cache semantics (hits on re-tests,
invalidation on insert, events on the bus) and the service-level
parallelism cap.
"""

import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeductiveEngine, parse_program
from repro.core import engine as engine_module
from repro.core.safety import CoverageChecker
from repro.gdb import parse_database
from repro.obs.trace import ProfileCollector
from repro.plan import shard
from repro.service.executor import JobExecutor
from repro.service.jobs import JobSpec
from repro.util import hooks

from tests.test_plan_property import edb, program_text

EXAMPLE_41_EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

EXAMPLE_41_PROGRAM = """
problems(t1 + 2, t2 + 2; "database") <- course(t1, t2; "database").
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


def _run(text, strategy, parallelism, checkpoint_path=None, **kwargs):
    engine = DeductiveEngine(
        parse_program(text),
        edb(),
        strategy=strategy,
        parallelism=parallelism,
        max_rounds=40,
        patience=4,
        on_give_up="partial",
        **kwargs
    )
    model = engine.run(
        checkpoint_path=checkpoint_path,
        checkpoint_every=1 if checkpoint_path else None,
    )
    return engine, model


def _checkpoint_payload(path):
    """The checkpoint JSON with wall-clock fields normalized (they are
    the only run-to-run nondeterminism in the format).  ``None`` when
    the run never accepted a tuple and so never snapshotted."""
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        payload = json.load(handle)
    for key in (
        "elapsed_seconds",
        "prior_elapsed_seconds",
        "segment_elapsed_seconds",
    ):
        payload["stats"][key] = 0.0
    # The sha256 digest covers the raw payload — wall clock included —
    # so it inherits the nondeterminism normalized away just above.
    payload.pop("digest", None)
    return payload


@settings(max_examples=12, deadline=None)
@given(program_text(), st.sampled_from(["naive", "semi-naive"]))
def test_parallel_reproduces_sequential(tmp_path_factory, text, strategy):
    base = tmp_path_factory.mktemp("parallel-prop")
    seq_path = os.path.join(str(base), "seq.ckpt.json")
    par_path = os.path.join(str(base), "par.ckpt.json")
    seq_engine, sequential = _run(text, strategy, 1, checkpoint_path=seq_path)
    par_engine, parallel = _run(text, strategy, 2, checkpoint_path=par_path)
    assert par_engine.fingerprint() == seq_engine.fingerprint()
    assert parallel.predicates() == sequential.predicates()
    for name in sequential.predicates():
        assert parallel.relation(name).equivalent(sequential.relation(name))
    # Stronger than equivalence: the merged derivations are replayed in
    # sequential order, so the canonical texts and the whole per-round
    # history match exactly — including give-up/partial outcomes.
    assert str(parallel) == str(sequential)
    assert parallel.stats.to_dict().keys() == sequential.stats.to_dict().keys()
    assert (
        parallel.stats.new_tuples_per_round
        == sequential.stats.new_tuples_per_round
    )
    assert (
        parallel.stats.derived_tuples_per_round
        == sequential.stats.derived_tuples_per_round
    )
    assert parallel.stats.gave_up == sequential.stats.gave_up
    assert _checkpoint_payload(par_path) == _checkpoint_payload(seq_path)


def test_parallel_example41_trace_shape():
    """The paper's Example 4.1 still closes in 8 rounds when sharded."""
    engine = DeductiveEngine(
        parse_program(EXAMPLE_41_PROGRAM),
        parse_database(EXAMPLE_41_EDB),
        strategy="naive",
        parallelism=2,
    )
    model = engine.run()
    assert model.stats.rounds == 8
    assert model.stats.constraint_safe


def test_parallelism_validation():
    program = parse_program("p(t; X) <- a(t; X).")
    with pytest.raises(ValueError):
        DeductiveEngine(program, edb(), parallelism=0)
    engine = DeductiveEngine(program, edb(), parallelism=None)
    assert engine.parallelism == 1


# -- persistent workers: start methods, transports, auto governor -----------


def _shm_leftovers():
    """Leaked ``repro_shard_*`` shared-memory segments (Linux-visible
    under /dev/shm; elsewhere the parent-side registry assertion in the
    pool tests stands in)."""
    if not os.path.isdir("/dev/shm"):
        return []
    return sorted(
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(shard.SHM_PREFIX)
    )


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_start_methods_reproduce_sequential(monkeypatch, start_method):
    """Satellite: the bootstrap handshake works under both start
    methods, and spawn (no inherited memory at all) still reproduces
    the sequential run exactly and leaks no segments."""
    if start_method not in multiprocessing.get_all_start_methods():
        pytest.skip("start method %r unavailable here" % start_method)
    monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", start_method)
    program, database = EXAMPLE_41_PROGRAM, EXAMPLE_41_EDB
    sequential = DeductiveEngine(
        parse_program(program), parse_database(database), strategy="naive"
    ).run()
    engine = DeductiveEngine(
        parse_program(program),
        parse_database(database),
        strategy="naive",
        parallelism=2,
    )
    model = engine.run()
    assert str(model) == str(sequential)
    assert model.stats.new_tuples_per_round == sequential.stats.new_tuples_per_round
    assert model.stats.shard_degraded is None
    assert _shm_leftovers() == []


def test_pipe_transport_matches_shm_and_costs_more_pipe_bytes(monkeypatch):
    """The inline pipe protocol stays available as REPRO_SHARD_TRANSPORT=pipe
    (the wire-cost baseline) and produces the identical model; the shm
    transport moves the bulk bytes off the pipes."""

    def run(transport):
        monkeypatch.setenv("REPRO_SHARD_TRANSPORT", transport)
        engine = DeductiveEngine(
            parse_program(EXAMPLE_41_PROGRAM),
            parse_database(EXAMPLE_41_EDB),
            strategy="semi-naive",
            parallelism=2,
        )
        model = engine.run()
        return model, engine.evaluator.shard_wire_stats

    pipe_model, pipe_wire = run("pipe")
    shm_model, shm_wire = run("shm")
    assert str(pipe_model) == str(shm_model)
    assert pipe_wire["transport"] == "pipe"
    assert shm_wire["transport"] == "shm"
    assert pipe_wire["shm_bytes"] == 0 and pipe_wire["segments"] == 0
    assert shm_wire["shm_bytes"] > 0 and shm_wire["segments"] > 0
    assert pipe_wire["rounds"] == shm_wire["rounds"]
    assert pipe_wire["dispatches"] == shm_wire["dispatches"]
    # Control frames are all that remain on the pipes under shm.
    assert shm_wire["pipe_bytes"] < pipe_wire["pipe_bytes"]
    assert _shm_leftovers() == []


def test_shard_dispatch_events_carry_wire_accounting():
    events = []
    sink = hooks.subscribe(
        lambda kind, fields: events.append(dict(fields))
        if kind == "shard.dispatch"
        else None
    )
    try:
        DeductiveEngine(
            parse_program(EXAMPLE_41_PROGRAM),
            parse_database(EXAMPLE_41_EDB),
            strategy="semi-naive",
            parallelism=2,
        ).run()
    finally:
        hooks.unsubscribe(sink)
    strata = [e for e in events if e["phase"] == "stratum"]
    rounds = [e for e in events if e["phase"] == "round"]
    assert strata and rounds
    for event in events:
        assert event["transport"] == "shm"
        assert event["workers"] == 2
        assert isinstance(event["pipe_bytes"], int)
        assert isinstance(event["shm_bytes"], int)
    assert all("stratum" in e and "segments" in e for e in strata)
    assert all(
        "round" in e and "tasks" in e and "segments" in e for e in rounds
    )
    # The stratum broadcast is the big shm write; rounds ship compact
    # descriptors plus result/accept segments.
    assert sum(e["shm_bytes"] for e in events) > 0


def test_parallel_profile_counts_worker_operators():
    """Satellite: worker-side plan.operator totals reach the parent's
    ProfileCollector, so a parallel profile reports the same invocation
    and cardinality totals as the sequential one."""

    def profile(parallelism):
        collector = ProfileCollector()
        hooks.subscribe(collector)
        try:
            DeductiveEngine(
                parse_program(EXAMPLE_41_PROGRAM),
                parse_database(EXAMPLE_41_EDB),
                strategy="semi-naive",
                parallelism=parallelism,
            ).run()
        finally:
            hooks.SINKS = ()
        return {
            key: (
                entry["invocations"],
                entry["input_tuples"],
                entry["output_tuples"],
            )
            for key, entry in collector.operators.items()
        }

    assert profile(2) == profile(1)


def test_worker_stats_flush_marks_aggregated_events():
    operators = []
    sink = hooks.subscribe(
        lambda kind, fields: operators.append(dict(fields))
        if kind == "plan.operator"
        else None
    )
    try:
        DeductiveEngine(
            parse_program(EXAMPLE_41_PROGRAM),
            parse_database(EXAMPLE_41_EDB),
            strategy="semi-naive",
            parallelism=2,
        ).run()
    finally:
        hooks.unsubscribe(sink)
    aggregated = [e for e in operators if e.get("aggregated")]
    assert aggregated, "worker stats never flushed"
    assert all(e["count"] >= 1 for e in aggregated)
    assert all(e["worker"].startswith("repro-shard-") for e in aggregated)


# -- the --parallel auto governor -------------------------------------------


def test_parallel_auto_validation_and_mode():
    program = parse_program("p(t; X) <- a(t; X).")
    engine = DeductiveEngine(program, edb(), parallelism="auto")
    assert engine.evaluator.parallelism_mode == "auto"
    assert engine.evaluator.parallelism == 1
    with pytest.raises(ValueError):
        DeductiveEngine(program, edb(), parallelism="sometimes")


def test_parallel_auto_single_cpu_stays_sequential(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    sequential = DeductiveEngine(
        parse_program(EXAMPLE_41_PROGRAM),
        parse_database(EXAMPLE_41_EDB),
        strategy="semi-naive",
    ).run()
    model = DeductiveEngine(
        parse_program(EXAMPLE_41_PROGRAM),
        parse_database(EXAMPLE_41_EDB),
        strategy="semi-naive",
        parallelism="auto",
    ).run()
    assert str(model) == str(sequential)
    decision = model.stats.to_dict()["parallel_auto"]
    assert decision == {"decision": "sequential", "reason": "single-cpu"}


def test_parallel_auto_upshift_reproduces_sequential(monkeypatch):
    """Force the governor's hand (zero modeled dispatch overhead, two
    CPUs): the run must upshift mid-stratum and still match sequential
    bit for bit."""
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    monkeypatch.setattr(engine_module, "AUTO_DISPATCH_OVERHEAD_S", 0.0)
    sequential = DeductiveEngine(
        parse_program(EXAMPLE_41_PROGRAM),
        parse_database(EXAMPLE_41_EDB),
        strategy="semi-naive",
    ).run()
    engine = DeductiveEngine(
        parse_program(EXAMPLE_41_PROGRAM),
        parse_database(EXAMPLE_41_EDB),
        strategy="semi-naive",
        parallelism="auto",
    )
    model = engine.run()
    assert str(model) == str(sequential)
    assert model.stats.new_tuples_per_round == sequential.stats.new_tuples_per_round
    decision = model.stats.to_dict()["parallel_auto"]
    assert decision["decision"] == "parallel"
    assert decision["workers"] == 2
    assert engine.evaluator.parallelism == 2
    assert _shm_leftovers() == []


def test_parallel_auto_below_threshold_records_decision():
    """With the real overhead model on a fast tiny program, auto may
    legitimately never upshift — but it must always *say* what it
    decided."""
    model = DeductiveEngine(
        parse_program(EXAMPLE_41_PROGRAM),
        parse_database(EXAMPLE_41_EDB),
        strategy="semi-naive",
        parallelism="auto",
    ).run()
    decision = model.stats.to_dict()["parallel_auto"]
    assert decision["decision"] in ("sequential", "parallel")
    if decision["decision"] == "sequential":
        assert decision["reason"] in ("single-cpu", "below-threshold")
    assert _shm_leftovers() == []


def test_cli_parallel_argument_accepts_auto():
    from repro.cli import _parallel_arg

    assert _parallel_arg("auto") == "auto"
    assert _parallel_arg("3") == 3
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        _parallel_arg("many")


# -- coverage cache ---------------------------------------------------------


def _single_tuple(text):
    return parse_database(text).relation("r")


def test_coverage_cache_hits_on_retest():
    relation = _single_tuple("relation r[1; 0] { (2n) where T1 >= 0; }")
    candidate = _single_tuple(
        "relation r[1; 0] { (2n+4) where T1 >= 0; }"
    ).tuples[0]
    checker = CoverageChecker("paper")
    assert checker.covered(candidate, relation)
    assert (checker.hits, checker.misses) == (0, 1)
    assert checker.covered(candidate, relation)
    assert (checker.hits, checker.misses) == (1, 1)


def test_coverage_cache_disabled_never_hits():
    relation = _single_tuple("relation r[1; 0] { (2n) where T1 >= 0; }")
    candidate = _single_tuple(
        "relation r[1; 0] { (2n+4) where T1 >= 0; }"
    ).tuples[0]
    checker = CoverageChecker("paper", use_cache=False)
    assert checker.covered(candidate, relation)
    assert checker.covered(candidate, relation)
    assert (checker.hits, checker.misses) == (0, 2)
    assert relation._coverage_cache is None


def test_coverage_cache_invalidated_by_insert():
    """A negative verdict must not survive an insert that touches its
    signature — the inserted tuple may be exactly what covers it."""
    relation = _single_tuple("relation r[1; 0] { (4n) where T1 >= 0; }")
    candidate = _single_tuple(
        "relation r[1; 0] { (4n+2) where T1 >= 0; }"
    ).tuples[0]
    checker = CoverageChecker("paper")
    assert not checker.covered(candidate, relation)
    grown = relation.with_tuples([candidate])
    assert grown.coverage_generation == relation.coverage_generation + 1
    assert checker.covered(candidate, grown)
    # The re-test on the grown relation recomputed (miss), then caches.
    assert checker.misses == 2
    assert checker.covered(candidate, grown)
    assert checker.hits == 1


def test_coverage_cache_positive_verdicts_survive_other_inserts():
    """True verdicts are monotone (coverage only grows), so an insert
    at a *different* signature keeps them warm."""
    relation = _single_tuple(
        'relation r[1; 1] { (2n; "x") where T1 >= 0; }'
    )
    covered = _single_tuple(
        'relation r[1; 1] { (2n+4; "x") where T1 >= 0; }'
    ).tuples[0]
    other = _single_tuple(
        'relation r[1; 1] { (3n; "y") where T1 >= 0; }'
    ).tuples[0]
    checker = CoverageChecker("paper")
    assert checker.covered(covered, relation)
    grown = relation.with_tuples([other])
    assert checker.covered(covered, grown)
    assert (checker.hits, checker.misses) == (1, 1)


def test_coverage_cache_events_and_model_identity():
    """Example 4.1 naive: the cache cuts ``implied_by_union`` work
    (misses) without changing the model, and the sweep emits
    ``coverage.cache`` events with the per-round deltas."""
    program = parse_program(EXAMPLE_41_PROGRAM)
    database = parse_database(EXAMPLE_41_EDB)

    def run(coverage_cache):
        events = []
        hooks.subscribe(
            lambda kind, fields: events.append(dict(fields))
            if kind == "coverage.cache"
            else None
        )
        try:
            engine = DeductiveEngine(
                program,
                database,
                strategy="naive",
                coverage_cache=coverage_cache,
            )
            model = engine.run()
        finally:
            hooks.SINKS = ()
        return model, events

    cached_model, cached_events = run(True)
    uncached_model, uncached_events = run(False)
    assert str(cached_model) == str(uncached_model)
    assert all(event["enabled"] for event in cached_events)
    assert not any(event["enabled"] for event in uncached_events)
    cached_hits = sum(event["hits"] for event in cached_events)
    cached_misses = sum(event["misses"] for event in cached_events)
    uncached_hits = sum(event["hits"] for event in uncached_events)
    uncached_misses = sum(event["misses"] for event in uncached_events)
    assert uncached_hits == 0
    assert cached_hits > 0
    assert cached_misses < uncached_misses
    # Same number of coverage decisions either way — the cache changes
    # how they are answered, never how many are asked.
    assert cached_hits + cached_misses == uncached_misses


def test_free_signature_is_memoized():
    relation = _single_tuple("relation r[1; 0] { (2n) where T1 >= 0; }")
    gt = relation.tuples[0]
    assert gt._free_signature is None
    first = gt.free_signature()
    assert gt._free_signature is first
    assert gt.free_signature() is first


# -- service-level parallelism cap ------------------------------------------


def test_job_spec_parallelism_roundtrip_and_validation():
    spec = JobSpec.from_json_dict(
        {"id": "j", "kind": "run", "program": "x", "parallelism": 3}
    )
    assert spec.parallelism == 3
    auto = JobSpec.from_json_dict(
        {"id": "a", "kind": "run", "program": "x", "parallelism": "auto"}
    )
    assert auto.parallelism == "auto"
    with pytest.raises(ValueError):
        JobSpec(job_id="j", kind="run", parallelism=0)
    with pytest.raises(ValueError):
        JobSpec(job_id="j", kind="run", parallelism="never")


def test_executor_caps_job_parallelism():
    executor = JobExecutor(max_parallelism=2)
    capped = JobSpec(job_id="j", kind="run", parallelism=8)
    modest = JobSpec(job_id="k", kind="run", parallelism=1)
    default = JobSpec(job_id="l", kind="run")
    assert executor.effective_parallelism(capped) == 2
    assert executor.effective_parallelism(modest) == 1
    assert executor.effective_parallelism(default) == 1
    uncapped = JobExecutor()
    assert uncapped.effective_parallelism(capped) == 8
    # "auto" passes through — the engine's governor decides, bounded
    # by the same cap (the executor hands it auto_parallelism_cap).
    auto = JobSpec(job_id="m", kind="run", parallelism="auto")
    assert executor.effective_parallelism(auto) == "auto"
    assert uncapped.effective_parallelism(auto) == "auto"
