"""Parallel sharded rounds and the cross-round coverage cache.

The contract under test is exact reproduction: ``parallelism > 1``
shards the firings of each T_GP round across worker processes, and
the merged result — model, per-round stats, checkpoint payloads — is
*identical* to the sequential run, not merely equivalent.  The
Hypothesis property drives that over random stratified programs; the
unit tests pin the coverage-cache semantics (hits on re-tests,
invalidation on insert, events on the bus) and the service-level
parallelism cap.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeductiveEngine, parse_program
from repro.core.safety import CoverageChecker
from repro.gdb import parse_database
from repro.service.executor import JobExecutor
from repro.service.jobs import JobSpec
from repro.util import hooks

from tests.test_plan_property import edb, program_text

EXAMPLE_41_EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""

EXAMPLE_41_PROGRAM = """
problems(t1 + 2, t2 + 2; "database") <- course(t1, t2; "database").
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


def _run(text, strategy, parallelism, checkpoint_path=None, **kwargs):
    engine = DeductiveEngine(
        parse_program(text),
        edb(),
        strategy=strategy,
        parallelism=parallelism,
        max_rounds=40,
        patience=4,
        on_give_up="partial",
        **kwargs
    )
    model = engine.run(
        checkpoint_path=checkpoint_path,
        checkpoint_every=1 if checkpoint_path else None,
    )
    return engine, model


def _checkpoint_payload(path):
    """The checkpoint JSON with wall-clock fields normalized (they are
    the only run-to-run nondeterminism in the format).  ``None`` when
    the run never accepted a tuple and so never snapshotted."""
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        payload = json.load(handle)
    for key in (
        "elapsed_seconds",
        "prior_elapsed_seconds",
        "segment_elapsed_seconds",
    ):
        payload["stats"][key] = 0.0
    # The sha256 digest covers the raw payload — wall clock included —
    # so it inherits the nondeterminism normalized away just above.
    payload.pop("digest", None)
    return payload


@settings(max_examples=12, deadline=None)
@given(program_text(), st.sampled_from(["naive", "semi-naive"]))
def test_parallel_reproduces_sequential(tmp_path_factory, text, strategy):
    base = tmp_path_factory.mktemp("parallel-prop")
    seq_path = os.path.join(str(base), "seq.ckpt.json")
    par_path = os.path.join(str(base), "par.ckpt.json")
    seq_engine, sequential = _run(text, strategy, 1, checkpoint_path=seq_path)
    par_engine, parallel = _run(text, strategy, 2, checkpoint_path=par_path)
    assert par_engine.fingerprint() == seq_engine.fingerprint()
    assert parallel.predicates() == sequential.predicates()
    for name in sequential.predicates():
        assert parallel.relation(name).equivalent(sequential.relation(name))
    # Stronger than equivalence: the merged derivations are replayed in
    # sequential order, so the canonical texts and the whole per-round
    # history match exactly — including give-up/partial outcomes.
    assert str(parallel) == str(sequential)
    assert parallel.stats.to_dict().keys() == sequential.stats.to_dict().keys()
    assert (
        parallel.stats.new_tuples_per_round
        == sequential.stats.new_tuples_per_round
    )
    assert (
        parallel.stats.derived_tuples_per_round
        == sequential.stats.derived_tuples_per_round
    )
    assert parallel.stats.gave_up == sequential.stats.gave_up
    assert _checkpoint_payload(par_path) == _checkpoint_payload(seq_path)


def test_parallel_example41_trace_shape():
    """The paper's Example 4.1 still closes in 8 rounds when sharded."""
    engine = DeductiveEngine(
        parse_program(EXAMPLE_41_PROGRAM),
        parse_database(EXAMPLE_41_EDB),
        strategy="naive",
        parallelism=2,
    )
    model = engine.run()
    assert model.stats.rounds == 8
    assert model.stats.constraint_safe


def test_parallelism_validation():
    program = parse_program("p(t; X) <- a(t; X).")
    with pytest.raises(ValueError):
        DeductiveEngine(program, edb(), parallelism=0)
    engine = DeductiveEngine(program, edb(), parallelism=None)
    assert engine.parallelism == 1


# -- coverage cache ---------------------------------------------------------


def _single_tuple(text):
    return parse_database(text).relation("r")


def test_coverage_cache_hits_on_retest():
    relation = _single_tuple("relation r[1; 0] { (2n) where T1 >= 0; }")
    candidate = _single_tuple(
        "relation r[1; 0] { (2n+4) where T1 >= 0; }"
    ).tuples[0]
    checker = CoverageChecker("paper")
    assert checker.covered(candidate, relation)
    assert (checker.hits, checker.misses) == (0, 1)
    assert checker.covered(candidate, relation)
    assert (checker.hits, checker.misses) == (1, 1)


def test_coverage_cache_disabled_never_hits():
    relation = _single_tuple("relation r[1; 0] { (2n) where T1 >= 0; }")
    candidate = _single_tuple(
        "relation r[1; 0] { (2n+4) where T1 >= 0; }"
    ).tuples[0]
    checker = CoverageChecker("paper", use_cache=False)
    assert checker.covered(candidate, relation)
    assert checker.covered(candidate, relation)
    assert (checker.hits, checker.misses) == (0, 2)
    assert relation._coverage_cache is None


def test_coverage_cache_invalidated_by_insert():
    """A negative verdict must not survive an insert that touches its
    signature — the inserted tuple may be exactly what covers it."""
    relation = _single_tuple("relation r[1; 0] { (4n) where T1 >= 0; }")
    candidate = _single_tuple(
        "relation r[1; 0] { (4n+2) where T1 >= 0; }"
    ).tuples[0]
    checker = CoverageChecker("paper")
    assert not checker.covered(candidate, relation)
    grown = relation.with_tuples([candidate])
    assert grown.coverage_generation == relation.coverage_generation + 1
    assert checker.covered(candidate, grown)
    # The re-test on the grown relation recomputed (miss), then caches.
    assert checker.misses == 2
    assert checker.covered(candidate, grown)
    assert checker.hits == 1


def test_coverage_cache_positive_verdicts_survive_other_inserts():
    """True verdicts are monotone (coverage only grows), so an insert
    at a *different* signature keeps them warm."""
    relation = _single_tuple(
        'relation r[1; 1] { (2n; "x") where T1 >= 0; }'
    )
    covered = _single_tuple(
        'relation r[1; 1] { (2n+4; "x") where T1 >= 0; }'
    ).tuples[0]
    other = _single_tuple(
        'relation r[1; 1] { (3n; "y") where T1 >= 0; }'
    ).tuples[0]
    checker = CoverageChecker("paper")
    assert checker.covered(covered, relation)
    grown = relation.with_tuples([other])
    assert checker.covered(covered, grown)
    assert (checker.hits, checker.misses) == (1, 1)


def test_coverage_cache_events_and_model_identity():
    """Example 4.1 naive: the cache cuts ``implied_by_union`` work
    (misses) without changing the model, and the sweep emits
    ``coverage.cache`` events with the per-round deltas."""
    program = parse_program(EXAMPLE_41_PROGRAM)
    database = parse_database(EXAMPLE_41_EDB)

    def run(coverage_cache):
        events = []
        hooks.subscribe(
            lambda kind, fields: events.append(dict(fields))
            if kind == "coverage.cache"
            else None
        )
        try:
            engine = DeductiveEngine(
                program,
                database,
                strategy="naive",
                coverage_cache=coverage_cache,
            )
            model = engine.run()
        finally:
            hooks.SINKS = ()
        return model, events

    cached_model, cached_events = run(True)
    uncached_model, uncached_events = run(False)
    assert str(cached_model) == str(uncached_model)
    assert all(event["enabled"] for event in cached_events)
    assert not any(event["enabled"] for event in uncached_events)
    cached_hits = sum(event["hits"] for event in cached_events)
    cached_misses = sum(event["misses"] for event in cached_events)
    uncached_hits = sum(event["hits"] for event in uncached_events)
    uncached_misses = sum(event["misses"] for event in uncached_events)
    assert uncached_hits == 0
    assert cached_hits > 0
    assert cached_misses < uncached_misses
    # Same number of coverage decisions either way — the cache changes
    # how they are answered, never how many are asked.
    assert cached_hits + cached_misses == uncached_misses


def test_free_signature_is_memoized():
    relation = _single_tuple("relation r[1; 0] { (2n) where T1 >= 0; }")
    gt = relation.tuples[0]
    assert gt._free_signature is None
    first = gt.free_signature()
    assert gt._free_signature is first
    assert gt.free_signature() is first


# -- service-level parallelism cap ------------------------------------------


def test_job_spec_parallelism_roundtrip_and_validation():
    spec = JobSpec.from_json_dict(
        {"id": "j", "kind": "run", "program": "x", "parallelism": 3}
    )
    assert spec.parallelism == 3
    with pytest.raises(ValueError):
        JobSpec(job_id="j", kind="run", parallelism=0)


def test_executor_caps_job_parallelism():
    executor = JobExecutor(max_parallelism=2)
    capped = JobSpec(job_id="j", kind="run", parallelism=8)
    modest = JobSpec(job_id="k", kind="run", parallelism=1)
    default = JobSpec(job_id="l", kind="run")
    assert executor.effective_parallelism(capped) == 2
    assert executor.effective_parallelism(modest) == 1
    assert executor.effective_parallelism(default) == 1
    uncapped = JobExecutor()
    assert uncapped.effective_parallelism(capped) == 8
