"""Focused tests for corners not covered elsewhere."""

import pytest

from repro.core import DeductiveEngine, GroundEvaluator, parse_clause, parse_program
from repro.core.transform import normalize_clause
from repro.datalog1s import parse_datalog1s
from repro.gdb import (
    GeneralizedRelation,
    GeneralizedTuple,
    parse_database,
    parse_generalized_tuple,
)
from repro.lrp import Lrp, ZPeriodicSet
from repro.util.errors import ParseError, SchemaError


class TestTransformCorners:
    def test_negated_atoms_normalized(self):
        clause = parse_clause("p(t) <- q(t), not r(t + 3).")
        normalized = normalize_clause(clause)
        assert len(normalized.negated_atoms) == 1
        inner = normalized.negated_atoms[0]
        assert inner.temporal_args[0].offset == 0  # bare fresh var
        assert "not r" in str(normalized)

    def test_negated_var_shared_with_positive(self):
        clause = parse_clause("p(t) <- q(t), not r(t).")
        normalized = normalize_clause(clause)
        # The negated atom's column is linked to t by a constraint.
        negated_var = normalized.negated_atoms[0].temporal_args[0].var
        assert negated_var != "t"
        assert any(
            negated_var in str(c) and "t" in str(c)
            for c in normalized.constraints
        )

    def test_all_temporal_variables_includes_negated(self):
        clause = parse_clause("p(t) <- not r(u), t < u.")
        normalized = normalize_clause(clause)
        names = normalized.all_temporal_variables()
        assert "t" in names and "u" in names

    def test_fact_normalization(self):
        normalized = normalize_clause(parse_clause("p(3, 7)."))
        assert len(normalized.head_vars) == 2
        assert len(normalized.constraints) == 2
        assert str(normalized).endswith(".")


class TestGroundEvaluatorCorners:
    def test_stats_fields(self):
        edb = parse_database("relation q[1; 0] { (2n) where T1 >= 0; }")
        program = parse_program("p(t) <- q(t). p(t + 2) <- p(t).")
        evaluator = GroundEvaluator(program, edb, 0, 20)
        stats = evaluator.run()
        assert stats.rounds >= 1
        assert stats.derivations > 0
        assert stats.atoms == len(evaluator.extension("p")) + len(
            evaluator.extension("q")
        )
        assert stats.atoms_per_round[-1] == stats.atoms

    def test_constant_body_argument(self):
        edb = parse_database("relation q[1; 0] { (2n) where T1 >= 0; }")
        program = parse_program("p(t) <- q(t), q(0).")
        evaluator = GroundEvaluator(program, edb, 0, 10)
        evaluator.run()
        assert (0,) in evaluator.extension("p")

    def test_data_constant_mismatch(self):
        edb = parse_database('relation q[1; 1] { (2n; "x") where T1 >= 0; }')
        program = parse_program('p(t) <- q(t; "y").')
        evaluator = GroundEvaluator(program, edb, 0, 10)
        evaluator.run()
        assert evaluator.extension("p") == set()


class TestDatalog1SStrata:
    def test_strata_partition_clauses(self):
        program = parse_datalog1s(
            """
            a(0). a(t + 2) <- a(t).
            b(t) <- not a(t).
            """
        )
        strata = program.strata()
        assert len(strata) == 2
        assert {c.head.predicate for c in strata[0].clauses} == {"a"}
        assert {c.head.predicate for c in strata[1].clauses} == {"b"}

    def test_single_stratum_is_whole_program(self):
        program = parse_datalog1s("a(0). a(t + 1) <- a(t).")
        strata = program.strata()
        assert len(strata) == 1
        assert len(strata[0]) == 2


class TestGdbParserErrors:
    def test_missing_bracket(self):
        with pytest.raises(ParseError):
            parse_database("relation p[1 0] {}")

    def test_wrong_entry_count(self):
        with pytest.raises(ParseError):
            parse_generalized_tuple("(n, n)", 1)

    def test_data_without_semicolon(self):
        with pytest.raises(ParseError):
            parse_generalized_tuple('(n "x")', 1, 1)

    def test_zero_period_literal_rejected(self):
        with pytest.raises(ValueError):
            parse_generalized_tuple("(0n+3)", 1)

    def test_schema_error_on_str_relation(self):
        rel = GeneralizedRelation.empty(1, 0)
        with pytest.raises(SchemaError):
            rel.with_tuple(GeneralizedTuple((Lrp(1, 0), Lrp(1, 0))))


class TestEngineCorners:
    def test_max_rounds_is_per_stratum(self):
        edb = parse_database(
            """
            relation seed[1; 0] { (6n) where T1 >= 0; }
            """
        )
        program = parse_program(
            """
            a(t) <- seed(t).
            a(t + 2) <- a(t).
            b(t) <- not a(t), t >= 0, t < 10.
            """
        )
        model = DeductiveEngine(program, edb, max_rounds=50).run()
        assert model.stats.constraint_safe
        assert model.stats.strata == 2

    def test_trace_with_negation(self):
        edb = parse_database("relation s[1; 0] { (4n) where T1 >= 0; }")
        program = parse_program(
            "a(t) <- s(t). b(t) <- not a(t), t >= 0, t < 6."
        )
        engine = DeductiveEngine(program, edb)
        rounds = list(engine.trace())
        heads = {pred for (_, fresh) in rounds for pred in fresh}
        assert heads == {"a", "b"}

    def test_empty_program(self):
        edb = parse_database("relation q[1; 0] { (2n); }")
        program = parse_program("p(t) <- q(t), t < 0, t > 0.")
        model = DeductiveEngine(program, edb).run()
        assert model.relation("p").is_empty()
        assert model.stats.constraint_safe

    def test_edb_only_predicate_queryable(self):
        edb = parse_database("relation q[1; 0] { (2n); }")
        program = parse_program("p(t) <- q(t).")
        model = DeductiveEngine(program, edb).run()
        answers = model.query("p(t) and q(t) and t >= 0 and t < 5")
        assert answers.extension(0, 5) == {(0,), (2,), (4,)}


class TestZPeriodicSetCorners:
    def test_xor(self):
        evens = ZPeriodicSet(2, [0])
        threes = ZPeriodicSet(3, [0])
        sym = evens ^ threes
        for t in range(-12, 12):
            assert (t in sym) == ((t % 2 == 0) != (t % 3 == 0))

    def test_str_of_full_set(self):
        assert str(ZPeriodicSet.all()) == "n"

    def test_is_subset_reflexive(self):
        s = ZPeriodicSet(6, [1, 4])
        assert s.is_subset(s)

    def test_density_bounds(self):
        assert ZPeriodicSet.empty().density() == 0.0
        assert ZPeriodicSet.all().density() == 1.0


class TestDatabaseDisplay:
    def test_empty_relation_str(self):
        db = parse_database("relation p[1; 0] {}")
        assert "relation p[1; 0] {}" in str(db)

    def test_negative_data_constant(self):
        gt = parse_generalized_tuple("(n; -5)", 1, 1)
        assert gt.data == (-5,)

    def test_tuple_str_integer_data(self):
        gt = parse_generalized_tuple("(n; 7)", 1, 1)
        assert "; 7)" in str(gt)
