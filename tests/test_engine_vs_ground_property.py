"""Randomized cross-validation: closed-form engine vs ground oracle.

Hypothesis generates small recursive programs over periodic EDBs; the
closed-form model (when the engine terminates by constraint safety)
must agree with the ground tuple-at-a-time fixpoint on the interior of
a generous window.  This is the strongest end-to-end property in the
suite: it exercises lrps, CRT refinement, the DBM algebra, the
generalized-program transformation, T_GP, and both safety criteria at
once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeductiveEngine, GroundEvaluator, parse_program
from repro.gdb import parse_database
from repro.util.errors import GiveUpError

WINDOW = 260
INTERIOR = 140


@st.composite
def periodic_program(draw):
    """A one-predicate recursive program over 1-2 periodic seeds."""
    seeds = draw(st.integers(1, 2))
    relations = []
    body_atoms = []
    for index in range(seeds):
        period = draw(st.integers(2, 12))
        offset = draw(st.integers(0, period - 1))
        low = draw(st.integers(0, 10))
        relations.append(
            "relation s%d[1; 0] { (%dn+%d) where T1 >= %d; }"
            % (index, period, offset, low)
        )
        body_atoms.append("s%d(t)" % index)
    shift = draw(st.integers(1, 10))
    clauses = ["p(t) <- %s." % ", ".join(body_atoms)]
    clauses.append("p(t + %d) <- p(t)." % shift)
    if draw(st.booleans()):
        bound = draw(st.integers(0, 30))
        clauses.append("q(t) <- p(t), t >= %d." % bound)
    return "\n".join(relations), "\n".join(clauses)


@given(periodic_program())
@settings(max_examples=25, deadline=None)
def test_engine_matches_ground_oracle(case):
    edb_text, program_text = case
    edb = parse_database(edb_text)
    program = parse_program(program_text)
    engine = DeductiveEngine(program, edb, max_rounds=400, patience=None)
    model = engine.run()
    assert model.stats.constraint_safe

    ground = GroundEvaluator(program, edb, -WINDOW, WINDOW)
    ground.run()
    for predicate in model.predicates():
        closed = {
            flat
            for flat in model.extension(predicate, -WINDOW, WINDOW)
            if -INTERIOR <= flat[0] < INTERIOR
        }
        oracle = {
            flat
            for flat in ground.extension(predicate)
            if -INTERIOR <= flat[0] < INTERIOR
        }
        assert closed == oracle, predicate


@st.composite
def two_argument_program(draw):
    """A program joining two temporal arguments with a gap constraint."""
    period = draw(st.integers(3, 10))
    ride = draw(st.integers(1, period))
    gap = draw(st.integers(0, 6))
    edb = (
        "relation hop[2; 0] { (%dn, %dn+%d) where T1 >= 0 & T2 = T1 + %d; }"
        % (period, period, ride % period, ride)
    )
    program = """
    go(t1, t2) <- hop(t1, t2).
    go(t1, t3) <- go(t1, t2), hop(u, t3), t2 <= u, u <= t2 + %d.
    """ % gap
    return edb, program


@given(two_argument_program())
@settings(max_examples=15, deadline=None)
def test_two_argument_recursion_matches_oracle(case):
    edb_text, program_text = case
    edb = parse_database(edb_text)
    program = parse_program(program_text)
    engine = DeductiveEngine(program, edb, max_rounds=300, patience=20)
    try:
        model = engine.run()
    except GiveUpError:
        # Give-up is a legal outcome; nothing to cross-check.
        return
    ground = GroundEvaluator(program, edb, -60, 160)
    ground.run()
    closed = {
        flat
        for flat in model.extension("go", -60, 160)
        if 0 <= flat[0] and flat[1] < 80
    }
    oracle = {
        flat
        for flat in ground.extension("go")
        if 0 <= flat[0] and flat[1] < 80
    }
    assert closed == oracle


@st.composite
def negation_program(draw):
    period_a = draw(st.integers(2, 8))
    period_b = draw(st.integers(2, 8))
    hi = draw(st.integers(10, 40))
    edb = (
        "relation a[1; 0] { (%dn) where T1 >= 0; }\n"
        "relation b[1; 0] { (%dn) where T1 >= 0; }" % (period_a, period_b)
    )
    program = """
    both(t) <- a(t).
    both(t + %d) <- both(t).
    only(t) <- not both(t), b(t), t >= 0, t < %d.
    """ % (draw(st.integers(1, 6)), hi)
    return edb, program, hi


@given(negation_program())
@settings(max_examples=15, deadline=None)
def test_stratified_negation_matches_hand_semantics(case):
    edb_text, program_text, hi = case
    edb = parse_database(edb_text)
    program = parse_program(program_text)
    model = DeductiveEngine(program, edb, max_rounds=300, patience=None).run()
    both = {t for (t,) in model.extension("both", -10, hi + 50)}
    b_rel = edb.relation("b")
    for t in range(0, hi):
        expected = b_rel.contains_point((t,)) and t not in both
        assert model.relation("only").contains_point((t,)) == expected
