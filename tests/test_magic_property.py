"""Goal-directed (magic-set) evaluation: equivalence and unit tests.

The core contract: within the demanded window, goal-directed answers
are exactly the full fixpoint's.  Hypothesis generates recursive chain
programs with random shifts and random point/window goals and checks
the extensions match; unit tests pin the adornment meet, the demand
zones seeded into magic facts, the negation cone, the fallback
degradations, and the CLI's typed (numeric-before-lexicographic) sort
of windowed answers.
"""

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.plan.magic import (
    MagicUnsupportedError,
    QueryGoal,
    goal_directed_model,
    goal_from_formula,
    magic_predicate,
    rewrite_for_goal,
)


@st.composite
def chain_case(draw):
    """2-3 independent recursive chains plus a cross-chain join, and a
    random goal (point or window) on one of the derived predicates."""
    chains = draw(st.integers(2, 3))
    edb_parts = []
    program_parts = []
    for chain in range(chains):
        period = draw(st.integers(4, 12))
        offset = draw(st.integers(0, period - 1))
        shift = draw(st.integers(1, 6))
        edb_parts.append(
            'relation s%d[1; 1] { (%dn+%d; "d%d") where T1 >= 0; }'
            % (chain, period, offset, chain)
        )
        program_parts.append("p%d(t; X) <- s%d(t; X)." % (chain, chain))
        program_parts.append(
            "p%d(t + %d; X) <- p%d(t; X)." % (chain, shift, chain)
        )
    program_parts.append("join0(t; X, Y) <- p0(t; X), p1(t; Y).")
    predicate = draw(
        st.sampled_from(["p%d" % c for c in range(chains)] + ["join0"])
    )
    low = draw(st.integers(0, 40))
    width = draw(st.integers(1, 25))
    return (
        "\n".join(edb_parts),
        "\n".join(program_parts),
        predicate,
        low,
        low + width,
    )


@given(chain_case())
@settings(max_examples=20, deadline=None)
def test_goal_directed_equals_full_within_window(case):
    edb_text, program_text, predicate, low, high = case
    edb = parse_database(edb_text)
    program = parse_program(program_text)
    full = DeductiveEngine(program, edb, on_give_up="partial").run()
    assert full.stats.constraint_safe

    goal = QueryGoal.windowed(predicate, low, high)
    model, info = goal_directed_model(program, edb, goal, on_give_up="partial")
    assert not info["degraded"], info
    assert set(model.extension(predicate, low, high)) == set(
        full.extension(predicate, low, high)
    )
    # Goal direction must never do *more* work than full fixpoint.
    assert model.stats.total_new_tuples() <= full.stats.total_new_tuples()


EDB = parse_database(
    """
relation seed[1; 1] {
  (24n+0; "a") where T1 >= 0;
  (24n+3; "b") where T1 >= 0;
}
"""
)

PROGRAM = parse_program(
    """
p(t; X) <- seed(t; X).
p(t + 6; X) <- p(t; X).
q(t; X) <- p(t; X).
r(t; X) <- q(t + 1; X).
"""
)


def test_reachability_drops_unrelated_clauses():
    rewrite = rewrite_for_goal(PROGRAM, QueryGoal.point("q", 12))
    assert rewrite.reachable == {"p", "q"}
    assert rewrite.dropped_clauses == 1  # the r clause
    heads = {clause.head.predicate for clause in rewrite.program.clauses}
    assert "r" not in heads


def test_magic_facts_carry_demand_zone_as_dbm():
    rewrite = rewrite_for_goal(PROGRAM, QueryGoal.point("q", 12))
    [gt] = rewrite.magic_relations[magic_predicate("q")].tuples
    assert gt.constraints.satisfied_by((12,))
    assert not gt.constraints.satisfied_by((13,))
    # p's demand is widened below the goal instant (the +6 shift walks
    # the demand downward), never above it.
    [gt_p] = rewrite.magic_relations[magic_predicate("p")].tuples
    assert gt_p.constraints.satisfied_by((6,))
    assert gt_p.constraints.satisfied_by((0,))
    assert not gt_p.constraints.satisfied_by((18,))
    assert rewrite.widenings >= 1


def test_adornment_meets_over_all_occurrences():
    program = parse_program(
        """
reach(t; X, Y) <- edge(t; X, Y).
reach(t; X, Z) <- reach(t; X, Y), edge(t; Y, Z).
"""
    )
    goal = QueryGoal.windowed("reach", 0, 5, {0: "a"})
    rewrite = rewrite_for_goal(program, goal)
    # Column 0 stays bound through the recursion (X flows head->body);
    # column 1 is unresolvable in the recursive occurrence, so the
    # meet drops it.
    assert rewrite.bound_columns["reach"] == (0,)
    [gt] = rewrite.magic_relations[magic_predicate("reach")].tuples
    assert gt.data == ("a",)


def test_adornment_drops_column_not_passed_sideways():
    program = parse_program(
        """
out(t; Y) <- pair(t; X, Y).
pair(t; X, Y) <- left(t; X), right(t; Y).
"""
    )
    goal = QueryGoal.whole("out")
    rewrite = rewrite_for_goal(program, goal)
    # out's head data var Y is unbound in the goal, so nothing is
    # resolvable at pair's occurrence: no bound data columns at all.
    assert rewrite.bound_columns["pair"] == ()


def test_negation_cone_stays_unguarded():
    program = parse_program(
        """
busy(t; X) <- edge(t; X, Y).
free(t; X) <- node(t; X), not busy(t; X).
"""
    )
    rewrite = rewrite_for_goal(program, QueryGoal.point("free", 3))
    assert rewrite.restricted == {"free"}
    assert rewrite.unrestricted == {"busy"}
    for clause in rewrite.program.clauses:
        body_predicates = [a.predicate for a in clause.predicate_atoms()]
        if clause.head.predicate == "busy":
            assert magic_predicate("busy") not in body_predicates
        if clause.head.predicate == "free":
            assert body_predicates[0] == magic_predicate("free")


def test_negation_results_match_full_fixpoint():
    program = parse_program(
        """
busy(t; X) <- edge(t; X, Y).
free(t; X) <- node(t; X), not busy(t; X).
"""
    )
    edb = parse_database(
        """
relation edge[1; 2] { (24n+0; "a", "b") where T1 >= 0; }
relation node[1; 1] {
  (n; "a") where T1 >= 0 & T1 <= 100;
  (n; "z") where T1 >= 0 & T1 <= 100;
}
"""
    )
    full = DeductiveEngine(program, edb, on_give_up="partial").run()
    model, info = goal_directed_model(
        program, edb, QueryGoal.windowed("free", 0, 10), on_give_up="partial"
    )
    assert not info["degraded"]
    assert set(model.extension("free", 0, 10)) == set(
        full.extension("free", 0, 10)
    )


def test_unknown_goal_predicate_degrades_to_full():
    with pytest.raises(MagicUnsupportedError):
        rewrite_for_goal(PROGRAM, QueryGoal.point("nosuch", 0))
    model, info = goal_directed_model(
        PROGRAM, EDB, QueryGoal.point("nosuch", 0), on_give_up="partial"
    )
    assert info["degraded"]
    assert model.stats.magic_degraded is not None
    assert "magic_degraded" in model.stats.to_dict()
    # The fallback is the full fixpoint: every predicate is complete.
    full = DeductiveEngine(PROGRAM, EDB, on_give_up="partial").run()
    assert model.equivalent(full)


def test_demand_prefix_collision_degrades():
    program = parse_program("_m__p(t) <- seed2(t). p(t) <- _m__p(t).")
    with pytest.raises(MagicUnsupportedError):
        rewrite_for_goal(program, QueryGoal.point("p", 0))


def test_goal_from_formula_single_atom():
    idb = {"q", "p"}
    goal, reason = goal_from_formula('q(t; X)', idb, window=(5, 9))
    assert reason is None
    assert goal == QueryGoal.windowed("q", 5, 9)
    goal, reason = goal_from_formula('q(12; "a")', idb)
    assert reason is None
    assert goal.predicate == "q"
    assert (goal.low, goal.high) == (12, 13)
    assert goal.data == ((0, "a"),)


def test_goal_from_formula_rejections():
    idb = {"q", "p"}
    goal, reason = goal_from_formula("q(t; X) and p(t; X)", idb)
    assert goal is None and "2 intensional" in reason
    goal, reason = goal_from_formula("not q(t; X)", idb)
    assert goal is None and "negation" in reason
    goal, reason = goal_from_formula("seed(t; X)", idb)
    assert goal is None and "no intensional" in reason
    # EDB atoms alongside the one IDB atom are fine.
    goal, reason = goal_from_formula("exists u (q(t; X) and seed(u; X))", idb)
    assert reason is None and goal.predicate == "q"


def test_cli_window_sorts_numerically(tmp_path):
    """t=2 rows print before t=10: the typed sort key orders numbers
    numerically where the old ``repr`` sort put "(10" before "(2"."""
    edb = tmp_path / "edb.gdb"
    edb.write_text(
        """
relation s[1; 1] {
  (24n+2; "x") where T1 >= 0;
  (24n+10; "x") where T1 >= 0;
}
"""
    )
    out = io.StringIO()
    code = main(
        ["query", str(edb), "s(t; X)", "--window", "0", "24", "--json"],
        out=out,
    )
    assert code == 0
    tuples = json.loads(out.getvalue())["window"]["tuples"]
    assert tuples == [[2, "x"], [10, "x"]]


def test_cli_goal_directed_matches_full(tmp_path):
    edb = tmp_path / "edb.gdb"
    edb.write_text(
        """
relation seed[1; 1] {
  (24n+0; "a") where T1 >= 0;
  (24n+3; "b") where T1 >= 0;
}
"""
    )
    prog = tmp_path / "prog.dtl"
    prog.write_text(
        """
p(t; X) <- seed(t; X).
p(t + 6; X) <- p(t; X).
q(t; X) <- p(t; X).
r(t; X) <- q(t + 1; X).
"""
    )
    reports = {}
    for label, extra in (("full", []), ("goal", ["--goal-directed"])):
        out = io.StringIO()
        code = main(
            [
                "query",
                str(edb),
                "q(t; X)",
                "--program",
                str(prog),
                "--window",
                "10",
                "14",
                "--json",
            ]
            + extra,
            out=out,
        )
        assert code == 0
        reports[label] = json.loads(out.getvalue())
    assert (
        reports["goal"]["window"]["tuples"]
        == reports["full"]["window"]["tuples"]
    )
    assert not reports["goal"]["magic"]["degraded"]
    assert reports["goal"]["magic"]["dropped_clauses"] == 1
