"""Tests for the Model convenience API and stats bookkeeping."""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.lrp import EventuallyPeriodicSet, ZPeriodicSet


def build_model():
    edb = parse_database(
        """
        relation course[2; 1] {
          (168n+8, 168n+10; "database") where T2 = T1 + 2;
        }
        """
    )
    program = parse_program(
        """
        problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
        problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
        """
    )
    return DeductiveEngine(program, edb).run()


class TestModel:
    def test_predicates_and_contains(self):
        model = build_model()
        assert model.predicates() == ["problems"]
        assert "problems" in model
        assert "course" not in model

    def test_getitem(self):
        model = build_model()
        assert model["problems"].temporal_arity == 2

    def test_unknown_predicate(self):
        model = build_model()
        with pytest.raises(KeyError):
            model.relation("nope")

    def test_str_mentions_relations(self):
        model = build_model()
        assert "problems" in str(model)
        assert "168n" in str(model)

    def test_query_joins_edb_and_idb(self):
        model = build_model()
        answers = model.query(
            'problems(t, u; "database") and course(v, w; "database") '
            "and t >= 0 and t < 60 and v >= 0 and v < 60"
        )
        # problems at 10, 34, 58 within [0, 60); course at 8.
        starts = {flat[0] for flat in answers.extension(0, 100)}
        assert starts == {10, 34, 58}

    def test_query_yes_no(self):
        model = build_model()
        yes = model.query('exists t, u (problems(t, u; "database"))')
        assert yes.is_true()

    def test_as_database_schemas(self):
        model = build_model()
        db = model.as_database()
        schema = db.schema("problems")
        assert (schema.temporal_arity, schema.data_arity) == (2, 1)


class TestStats:
    def test_stats_fields(self):
        model = build_model()
        stats = model.stats
        assert stats.strategy == "semi-naive"
        assert stats.safety_mode == "paper"
        assert stats.strata == 1
        assert stats.rounds == 8
        assert stats.total_new_tuples() == 7
        assert stats.elapsed_seconds > 0
        assert len(stats.new_tuples_per_round) == stats.rounds
        assert len(stats.derived_tuples_per_round) == stats.rounds

    def test_signature_stable_round(self):
        model = build_model()
        # New free signatures appear through round 7 (seven classes).
        assert model.stats.signature_stable_round == 7


class TestPeriodicConversions:
    def test_restrict_to_naturals(self):
        zset = ZPeriodicSet(6, [1, 3])
        eps = zset.restrict_to_naturals()
        assert eps == EventuallyPeriodicSet(period=6, residues=[1, 3])
        assert -5 not in eps and 1 in eps

    def test_restrict_with_start(self):
        eps = ZPeriodicSet(4, [0]).restrict_to_naturals(start=9)
        assert 8 not in eps and 12 in eps

    def test_restrict_rejects_negative_start(self):
        with pytest.raises(ValueError):
            ZPeriodicSet(2, [0]).restrict_to_naturals(start=-1)

    def test_tail_as_zset(self):
        eps = EventuallyPeriodicSet(
            threshold=7, period=4, residues=[2], prefix=[0, 1]
        )
        assert eps.tail_as_zset() == ZPeriodicSet(4, [2])

    def test_eventually_agrees_with(self):
        eps = EventuallyPeriodicSet(
            threshold=3, period=2, residues=[0], prefix=[1]
        )
        assert eps.eventually_agrees_with(ZPeriodicSet(2, [0]))
        assert not eps.eventually_agrees_with(ZPeriodicSet(2, [1]))

    def test_round_trip(self):
        zset = ZPeriodicSet(12, [2, 7, 11])
        assert zset.restrict_to_naturals().tail_as_zset() == zset
