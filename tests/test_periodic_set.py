"""Unit and property tests for repro.lrp.periodic_set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrp import EventuallyPeriodicSet, Lrp, ZPeriodicSet

z_sets = st.builds(
    ZPeriodicSet,
    st.integers(1, 24),
    st.sets(st.integers(0, 23), max_size=12),
)


def eps_strategy():
    return st.builds(
        EventuallyPeriodicSet,
        st.integers(0, 12),  # threshold
        st.integers(1, 12),  # period
        st.sets(st.integers(0, 11), max_size=6),  # residues
        st.sets(st.integers(0, 11), max_size=8),  # prefix
    )


eps_sets = eps_strategy()

WINDOW = 180


class TestZPeriodicSetBasics:
    def test_canonical_minimal_period(self):
        assert ZPeriodicSet(4, [1, 3]) == ZPeriodicSet(2, [1])
        assert ZPeriodicSet(4, [1, 3]).period == 2

    def test_empty_and_all(self):
        assert ZPeriodicSet.empty().is_empty()
        assert ZPeriodicSet.all().is_all()
        assert not ZPeriodicSet.all().is_empty()
        assert 7 in ZPeriodicSet.all()
        assert 7 not in ZPeriodicSet.empty()

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            ZPeriodicSet(0, [])

    def test_from_to_lrps(self):
        s = ZPeriodicSet.from_lrps([Lrp(4, 1), Lrp(4, 3)])
        assert s.to_lrps() == [Lrp(2, 1)]

    def test_membership_negative(self):
        evens = ZPeriodicSet(2, [0])
        assert -4 in evens and -3 not in evens

    def test_density(self):
        assert ZPeriodicSet(4, [0, 2]).density() == 0.5

    def test_str(self):
        assert str(ZPeriodicSet.empty()) == "{}"
        assert "2n" in str(ZPeriodicSet(2, [0]))


class TestZPeriodicSetAlgebra:
    @given(z_sets, z_sets)
    def test_union_membership(self, a, b):
        u = a | b
        for t in range(-WINDOW, WINDOW):
            assert (t in u) == (t in a or t in b)

    @given(z_sets, z_sets)
    def test_intersection_membership(self, a, b):
        m = a & b
        for t in range(-WINDOW, WINDOW):
            assert (t in m) == (t in a and t in b)

    @given(z_sets, z_sets)
    def test_difference_membership(self, a, b):
        d = a - b
        for t in range(-WINDOW, WINDOW):
            assert (t in d) == (t in a and t not in b)

    @given(z_sets)
    def test_complement(self, a):
        c = ~a
        for t in range(-WINDOW, WINDOW):
            assert (t in c) == (t not in a)
        assert ~c == a

    @given(z_sets, z_sets)
    def test_de_morgan(self, a, b):
        assert ~(a | b) == (~a) & (~b)
        assert ~(a & b) == (~a) | (~b)

    @given(z_sets, z_sets)
    def test_subset_consistent(self, a, b):
        assert a.is_subset(b) == (a | b == b)

    @given(z_sets, st.integers(-30, 30))
    def test_shift(self, a, c):
        shifted = a.shift(c)
        for t in range(-60, 60):
            assert (t in shifted) == ((t - c) in a)

    @given(z_sets)
    def test_canonical_equality(self, a):
        # Rebuilding from a widened representation must compare equal.
        widened = ZPeriodicSet(
            a.period * 3,
            [r + k * a.period for r in a.residues for k in range(3)],
        )
        assert widened == a
        assert hash(widened) == hash(a)


class TestEventuallyPeriodicBasics:
    def test_from_finite(self):
        s = EventuallyPeriodicSet.from_finite([3, 1, 4])
        assert sorted(s.window(0, 10)) == [1, 3, 4]
        assert s.is_finite()
        assert s.max_element() == 4

    def test_from_finite_empty(self):
        s = EventuallyPeriodicSet.from_finite([])
        assert s.is_empty()
        assert s.min_element() is None
        assert s.max_element() is None

    def test_from_finite_rejects_negatives(self):
        with pytest.raises(ValueError):
            EventuallyPeriodicSet.from_finite([-1])

    def test_negative_not_member(self):
        assert -3 not in EventuallyPeriodicSet.all()

    def test_canonical_threshold_pullback(self):
        # The prefix {0, 5} with tail 5n from 10 is really just 5n.
        s = EventuallyPeriodicSet(threshold=10, period=5, residues=[0], prefix=[0, 5])
        assert s.threshold == 0
        assert s == EventuallyPeriodicSet(period=5, residues=[0])

    def test_max_element_infinite_raises(self):
        with pytest.raises(ValueError):
            EventuallyPeriodicSet.all().max_element()

    def test_min_element(self):
        s = EventuallyPeriodicSet(threshold=7, period=5, residues=[1])
        assert s.min_element() == 11
        s2 = EventuallyPeriodicSet(threshold=7, period=5, residues=[1], prefix=[2])
        assert s2.min_element() == 2

    def test_finite_set_normalizes_period(self):
        s = EventuallyPeriodicSet(threshold=4, period=6, residues=[], prefix=[1])
        assert s.period == 1
        assert s.is_finite()


class TestEventuallyPeriodicAlgebra:
    @given(eps_sets, eps_sets)
    def test_boolean_ops(self, a, b):
        for t in range(0, 80):
            assert (t in (a | b)) == (t in a or t in b)
            assert (t in (a & b)) == (t in a and t in b)
            assert (t in (a - b)) == (t in a and t not in b)
            assert (t in (a ^ b)) == ((t in a) != (t in b))

    @given(eps_sets)
    def test_complement_involution(self, a):
        assert ~~a == a
        for t in range(0, 60):
            assert (t in ~a) == (t not in a)

    @given(eps_sets, eps_sets)
    def test_equality_is_extensional(self, a, b):
        horizon = max(a.threshold, b.threshold) + a.period * b.period + 1
        same = all((t in a) == (t in b) for t in range(horizon * 2))
        assert (a == b) == same

    @given(eps_sets, st.integers(0, 20))
    def test_shift_roundtrip(self, a, k):
        assert a.shift(k).shift_back(k) == a

    @given(eps_sets, st.integers(0, 20))
    def test_shift_membership(self, a, k):
        shifted = a.shift(k)
        for t in range(0, 80):
            assert (t in shifted) == (t - k >= 0 and (t - k) in a)

    @given(eps_sets, st.integers(0, 20))
    def test_shift_back_membership(self, a, k):
        back = a.shift_back(k)
        for t in range(0, 80):
            assert (t in back) == ((t + k) in a)

    def test_shift_rejects_negative(self):
        with pytest.raises(ValueError):
            EventuallyPeriodicSet.all().shift(-1)
        with pytest.raises(ValueError):
            EventuallyPeriodicSet.all().shift_back(-1)


class TestClosures:
    def test_up_closure_finite(self):
        s = EventuallyPeriodicSet.from_finite([2, 7])
        assert s.up_closure() == EventuallyPeriodicSet.from_finite(range(8))

    def test_up_closure_infinite(self):
        s = EventuallyPeriodicSet(period=5, residues=[3])
        assert s.up_closure().is_all()

    def test_up_closure_empty(self):
        assert EventuallyPeriodicSet.empty().up_closure().is_empty()

    def test_down_closure(self):
        s = EventuallyPeriodicSet(threshold=6, period=5, residues=[2])
        down = s.down_closure()
        assert down.min_element() == 7
        assert 6 not in down and 100 in down

    @given(eps_sets)
    def test_up_closure_property(self, a):
        up = a.up_closure()
        if not a.is_finite():
            assert up.is_all()
        elif a.is_empty():
            assert up.is_empty()
        else:
            top = a.max_element()
            assert up == EventuallyPeriodicSet.from_finite(range(top + 1))

    def test_plus_closure_single_point(self):
        s = EventuallyPeriodicSet.from_finite([3])
        closed = s.plus_closure(5)
        assert closed == EventuallyPeriodicSet(threshold=3, period=5, residues=[3])

    def test_plus_closure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EventuallyPeriodicSet.all().plus_closure(0)

    @given(eps_sets, st.integers(1, 9))
    @settings(max_examples=60)
    def test_plus_closure_extensional(self, a, k):
        closed = a.plus_closure(k)
        horizon = a.threshold + a.period * k + 3 * k + 10
        members = [t for t in range(horizon) if t in a]
        expected = set()
        for t in members:
            expected.update(range(t, horizon, k))
        for t in range(horizon):
            assert (t in closed) == (t in expected)

    @given(eps_sets, st.integers(1, 9))
    def test_plus_closure_is_closure(self, a, k):
        closed = a.plus_closure(k)
        assert a.is_subset(closed)
        assert closed.shift(k).is_subset(closed)
        assert closed.plus_closure(k) == closed
