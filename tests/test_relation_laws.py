"""Algebraic laws of the generalized-relation algebra, property-tested.

The closure of the representation under the boolean operations is the
backbone of both the FO layer and stratified negation; these tests
check the laws *semantically* (by exact equivalence, which is itself
implemented via difference + congruence-aware emptiness)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints import Comparison, ConstraintSystem, TemporalTerm
from repro.gdb import GeneralizedRelation, GeneralizedTuple
from repro.lrp import Lrp

small_lrps = st.builds(Lrp, st.integers(1, 4), st.integers(0, 3))


@st.composite
def relations(draw):
    n = draw(st.integers(0, 2))
    tuples = []
    for _ in range(n):
        lrp = draw(small_lrps)
        atoms = []
        if draw(st.booleans()):
            op = draw(st.sampled_from(["<", ">="]))
            c = draw(st.integers(-6, 6))
            atoms.append(
                Comparison(op, TemporalTerm(0), TemporalTerm(None, c))
            )
        tuples.append(
            GeneralizedTuple((lrp,), (), ConstraintSystem.from_atoms(1, atoms))
        )
    return GeneralizedRelation(1, 0, tuples)


SETTINGS = dict(max_examples=30, deadline=None)


class TestBooleanLaws:
    @given(relations(), relations())
    @settings(**SETTINGS)
    def test_union_commutes(self, a, b):
        assert a.union(b).equivalent(b.union(a))

    @given(relations(), relations(), relations())
    @settings(**SETTINGS)
    def test_union_associates(self, a, b, c):
        assert a.union(b).union(c).equivalent(a.union(b.union(c)))

    @given(relations(), relations())
    @settings(**SETTINGS)
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b).equivalent(b.intersect(a))

    @given(relations(), relations(), relations())
    @settings(**SETTINGS)
    def test_distributivity(self, a, b, c):
        left = a.intersect(b.union(c))
        right = a.intersect(b).union(a.intersect(c))
        assert left.equivalent(right)

    @given(relations())
    @settings(**SETTINGS)
    def test_excluded_middle(self, a):
        everything = a.union(a.complement())
        assert everything.equivalent(GeneralizedRelation.universe(1))

    @given(relations())
    @settings(**SETTINGS)
    def test_non_contradiction(self, a):
        assert a.intersect(a.complement()).is_empty()

    @given(relations(), relations())
    @settings(**SETTINGS)
    def test_de_morgan(self, a, b):
        lhs = a.union(b).complement()
        rhs = a.complement().intersect(b.complement())
        assert lhs.equivalent(rhs)

    @given(relations(), relations())
    @settings(**SETTINGS)
    def test_difference_is_intersection_with_complement(self, a, b):
        assert a.difference(b).equivalent(a.intersect(b.complement()))

    @given(relations())
    @settings(**SETTINGS)
    def test_idempotence(self, a):
        assert a.union(a).equivalent(a)
        assert a.intersect(a).equivalent(a)

    @given(relations(), relations())
    @settings(**SETTINGS)
    def test_containment_antisymmetry(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a.equivalent(b)
