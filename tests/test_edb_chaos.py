"""Chaos testing of the durable EDB under random kill/fault schedules.

Hypothesis drives random transaction histories with faults injected at
every ``wal_*`` and ``maintain_delta`` site.  Three invariants must
hold no matter where the faults land:

* reopening the store after any failure never raises — recovery either
  replays a committed transaction or cleanly loses an uncommitted one,
  and ``head_tx`` tells which;
* after every successfully applied delta batch the maintained model is
  ``equivalent()`` to a from-scratch fixpoint over the same snapshot;
* the as-of answer at every historical transaction matches a pure
  in-memory replay oracle maintained alongside the store.

A process kill is modeled by *discarding* the open handle (no close,
no final fsync beyond the commit's own) and reopening from disk — the
same observable behavior as SIGKILL for a WAL-first store.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DeductiveEngine, parse_program
from repro.edb import EdbStore, MaterializedModel
from repro.gdb.parser import parse_generalized_tuple
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.util.errors import ReproError

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

#: The tuple pool scenarios draw from (index = Hypothesis's choice).
POOL = [
    '(168n+%d, 168n+%d; "c%d") where T2 = T1 + 2' % (8 * k, 8 * k + 2, k)
    for k in range(6)
]

FAULT_SITES = ("wal_append", "wal_fsync", "wal_rotate", "maintain_delta")


def pool_tuple(index):
    return parse_generalized_tuple(POOL[index], 2, 1)


def live_keys(db):
    if "course" not in db.names():
        return frozenset()
    return frozenset(gt.canonical_key() for gt in db.relation("course").tuples)


batches = st.lists(
    st.lists(st.integers(0, len(POOL) - 1), min_size=1, max_size=3, unique=True),
    min_size=1,
    max_size=4,
)

fault_schedule = st.lists(
    st.tuples(st.sampled_from(FAULT_SITES), st.integers(1, 4)),
    min_size=0,
    max_size=3,
    unique_by=lambda pair: pair[0],
)


class Scenario:
    """One chaos run: a store, a maintained model, and a pure oracle."""

    def __init__(self, root):
        self.root = root
        self.store = EdbStore(root, segment_bytes=256)  # force rotations
        self.maintained = MaterializedModel(PROGRAM)
        self.live = set()  # oracle: currently-live pool indices
        self.history = {}  # tx -> frozenset of live canonical keys
        if self.store.head_tx == 0:
            self.store.apply(
                [
                    {
                        "op": "declare",
                        "relation": "course",
                        "temporal_arity": 2,
                        "data_arity": 1,
                    }
                ]
            )
            self.snapshot_history()

    def snapshot_history(self):
        self.history[self.store.head_tx] = frozenset(
            pool_tuple(i).canonical_key() for i in self.live
        )

    def ops_for(self, batch):
        """Toggle each drawn pool index: assert if dead, retract if
        live — always a valid transaction against the oracle state."""
        ops = []
        staged = set(self.live)
        for index in batch:
            if index in staged:
                ops.append(
                    {"op": "retract", "relation": "course", "tuple": pool_tuple(index)}
                )
                staged.discard(index)
            else:
                ops.append(
                    {"op": "assert", "relation": "course", "tuple": pool_tuple(index)}
                )
                staged.add(index)
        return ops, staged

    def crash_and_reopen(self):
        """Drop the in-memory handle (SIGKILL-equivalent) and recover."""
        self.store = EdbStore(self.root, segment_bytes=256)

    def settle(self, head_before, staged):
        """After a faulted commit the transaction may or may not have
        reached disk; ``head_tx`` after recovery settles the oracle."""
        if self.store.head_tx > head_before:
            self.live = staged
            self.snapshot_history()

    def check_maintained(self):
        model = self.maintained.refresh(self.store)
        scratch = DeductiveEngine(
            parse_program(PROGRAM), self.store.snapshot()
        ).run()
        assert model.equivalent(scratch)

    def check_asof_history(self):
        for tx, expected in self.history.items():
            assert live_keys(self.store.snapshot(tx)) == expected, (
                "as-of answer diverged from the replay oracle at tx %d" % tx
            )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(batches=batches, faults=fault_schedule, data=st.data())
def test_chaos_invariants(tmp_path_factory, batches, faults, data):
    root = str(tmp_path_factory.mktemp("edb-chaos") / "store")
    scenario = Scenario(root)
    plan = FaultPlan(
        [FaultSpec(site, at=at, repeat=False) for site, at in faults]
    )
    with plan.installed():
        for batch in batches:
            ops, staged = scenario.ops_for(batch)
            head_before = scenario.store.head_tx
            try:
                scenario.store.apply(ops)
            except ReproError:
                # Injected fault mid-commit: crash, recover, settle.
                scenario.crash_and_reopen()
                scenario.settle(head_before, staged)
            else:
                scenario.live = staged
                scenario.snapshot_history()
            # Every committed state must be maintainable; a fault at
            # maintain_delta must leave the previous materialization
            # usable and a retry must catch up.
            try:
                scenario.check_maintained()
            except ReproError:
                scenario.check_maintained()
            # Randomly interleave clean crashes between batches.
            if data.draw(st.booleans(), label="crash-after-batch"):
                scenario.crash_and_reopen()
    scenario.check_asof_history()
    # A final recovery with no plan installed must replay everything.
    scenario.crash_and_reopen()
    scenario.check_maintained()
    scenario.check_asof_history()


@settings(max_examples=15, deadline=None)
@given(
    tear=st.integers(1, 12),
    batches=st.lists(
        st.lists(st.integers(0, len(POOL) - 1), min_size=1, max_size=2, unique=True),
        min_size=1,
        max_size=3,
    ),
)
def test_torn_tail_fuzz(tmp_path_factory, tear, batches):
    """Tearing up to ``tear`` bytes off the WAL tail loses at most the
    final transaction and never the store."""
    root = str(tmp_path_factory.mktemp("edb-torn") / "store")
    scenario = Scenario(root)
    for batch in batches:
        ops, staged = scenario.ops_for(batch)
        scenario.store.apply(ops)
        scenario.live = staged
        scenario.snapshot_history()
    committed = scenario.store.head_tx
    wal_dir = os.path.join(root, "wal")
    tail = sorted(os.listdir(wal_dir))[-1]
    path = os.path.join(wal_dir, tail)
    size = os.path.getsize(path)
    cut = min(tear, size)
    with open(path, "r+b") as handle:
        handle.truncate(size - cut)
    reopened = EdbStore(root, segment_bytes=256)
    assert reopened.head_tx in (committed, committed - 1)
    for tx in range(1, reopened.head_tx + 1):
        if tx in scenario.history:
            assert live_keys(reopened.snapshot(tx)) == scenario.history[tx]
