"""Incremental model maintenance: after every delta batch the
maintained model must be ``equivalent()`` to a from-scratch fixpoint
over the same snapshot — whether the refresh took the warm insert
path, DRed overdelete/rederive, or degraded to a recompute.
"""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.edb import MAINTAINERS, EdbStore, MaintainerCache, MaterializedModel
from repro.gdb.parser import parse_generalized_tuple
from repro.runtime.faults import FaultPlan, InjectedFaultError
from repro.util import hooks

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""

NEGATION = """
quiet(t) <- slot(t), not busy(t).
"""

COURSE = '(168n+8, 168n+10; "database") where T2 = T1 + 2'
LOGIC = '(168n+20, 168n+22; "logic") where T2 = T1 + 2'
ALGEBRA = '(168n+60, 168n+62; "algebra") where T2 = T1 + 2'


def gt(text, ta=2, da=1):
    return parse_generalized_tuple(text, ta, da)


def declare_course():
    return {
        "op": "declare",
        "relation": "course",
        "temporal_arity": 2,
        "data_arity": 1,
    }


def assert_course(text):
    return {"op": "assert", "relation": "course", "tuple": gt(text)}


def retract_course(text):
    return {"op": "retract", "relation": "course", "tuple": gt(text)}


def scratch_model(store, tx=None, program=PROGRAM):
    engine = DeductiveEngine(parse_program(program), store.snapshot(tx))
    return engine.run()


@pytest.fixture
def store(tmp_path):
    handle = EdbStore(str(tmp_path / "store"))
    handle.apply([declare_course(), assert_course(COURSE)])
    yield handle
    handle.close()


class TestInsertMaintenance:
    def test_first_refresh_materializes(self, store):
        maintained = MaterializedModel(PROGRAM)
        model = maintained.refresh(store)
        assert model.equivalent(scratch_model(store))
        assert maintained.last_report.recomputed is True
        assert maintained.last_report.reason is None
        # A first materialization is not a degradation.
        assert model.stats.maintain_degraded is None

    def test_insert_delta_is_incremental_and_equivalent(self, store):
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)
        scratch_rounds = maintained.last_report.rounds
        store.apply([assert_course(LOGIC)])
        model = maintained.refresh(store)
        assert maintained.last_report.recomputed is False
        assert maintained.last_report.inserted == 1
        assert maintained.last_report.rounds <= scratch_rounds
        assert model.equivalent(scratch_model(store))
        assert model.stats.maintain_degraded is None

    def test_covered_insert_converges_in_one_round(self, store):
        # A course inside an already-derived residue class: all of its
        # problems derivations are covered, so the warm fixpoint closes
        # after a single round instead of re-walking the mod-168 cycle.
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)
        scratch_rounds = maintained.last_report.rounds
        store.apply(
            [assert_course('(168n+32, 168n+34; "database") where T2 = T1 + 2')]
        )
        model = maintained.refresh(store)
        assert maintained.last_report.recomputed is False
        assert maintained.last_report.rounds < scratch_rounds
        assert model.equivalent(scratch_model(store))

    def test_refresh_at_head_is_noop(self, store):
        maintained = MaterializedModel(PROGRAM)
        first = maintained.refresh(store)
        assert maintained.refresh(store) is first

    def test_cancelled_delta_keeps_model(self, store):
        maintained = MaterializedModel(PROGRAM)
        first = maintained.refresh(store)
        store.apply([assert_course(LOGIC)])
        store.apply([retract_course(LOGIC)])
        model = maintained.refresh(store)
        assert model is first
        assert maintained.last_report.rounds == 0
        assert maintained.tx == store.head_tx


class TestRetractionMaintenance:
    def test_dred_equivalent_to_scratch(self, store):
        store.apply([assert_course(LOGIC)])
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)
        store.apply([retract_course(LOGIC)])
        model = maintained.refresh(store)
        assert maintained.last_report.recomputed is False
        assert maintained.last_report.retracted == 1
        assert maintained.last_report.overdeleted > 0
        assert model.equivalent(scratch_model(store))

    def test_retract_everything(self, store):
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)
        store.apply([retract_course(COURSE)])
        model = maintained.refresh(store)
        assert model.equivalent(scratch_model(store))
        low, high = 0, 400
        assert list(model.extension("problems", low, high)) == []

    def test_mixed_insert_and_retract(self, store):
        store.apply([assert_course(LOGIC)])
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)
        store.apply([retract_course(LOGIC), assert_course(ALGEBRA)])
        model = maintained.refresh(store)
        assert model.equivalent(scratch_model(store))

    def test_rederive_budget_degrades_to_recompute(self, store):
        maintained = MaterializedModel(PROGRAM, rederive_budget=0)
        maintained.refresh(store)
        store.apply([retract_course(COURSE)])
        model = maintained.refresh(store)
        assert maintained.last_report.recomputed is True
        assert maintained.last_report.reason == "rederive-budget"
        assert model.stats.maintain_degraded["reason"] == "rederive-budget"
        assert model.equivalent(scratch_model(store))


class TestDegradation:
    def test_schema_change_recomputes(self, store):
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)
        store.apply(
            [
                {
                    "op": "declare",
                    "relation": "extra",
                    "temporal_arity": 1,
                    "data_arity": 0,
                },
                assert_course(LOGIC),
            ]
        )
        model = maintained.refresh(store)
        assert maintained.last_report.reason == "schema-change"
        assert model.stats.maintain_degraded["reason"] == "schema-change"
        assert model.equivalent(scratch_model(store))

    def test_negation_recomputes(self, tmp_path):
        store = EdbStore(str(tmp_path / "store"))
        store.apply(
            [
                {"op": "declare", "relation": "slot", "temporal_arity": 1, "data_arity": 0},
                {"op": "declare", "relation": "busy", "temporal_arity": 1, "data_arity": 0},
                {"op": "assert", "relation": "slot", "tuple": gt("(24n)", 1, 0)},
            ]
        )
        maintained = MaterializedModel(NEGATION)
        maintained.refresh(store)
        store.apply([{"op": "assert", "relation": "busy", "tuple": gt("(24n+12)", 1, 0)}])
        model = maintained.refresh(store)
        assert maintained.last_report.reason == "not-maintainable"
        assert model.equivalent(scratch_model(store, program=NEGATION))
        store.close()

    def test_asof_before_model_recomputes(self, store):
        store.apply([assert_course(LOGIC)])
        maintained = MaterializedModel(PROGRAM)
        maintained.refresh(store)
        model = maintained.refresh(store, tx=1)
        assert maintained.last_report.reason == "as-of-before-model"
        assert model.equivalent(scratch_model(store, tx=1))
        # The materialization now tracks tx=1 and can roll forward.
        model = maintained.refresh(store)
        assert model.equivalent(scratch_model(store))


class TestFaultSite:
    def test_maintain_delta_fault_leaves_model_intact(self, store):
        maintained = MaterializedModel(PROGRAM)
        before = maintained.refresh(store)
        store.apply([assert_course(LOGIC)])
        plan = FaultPlan.inject("maintain_delta", at=1)
        with plan.installed():
            with pytest.raises(InjectedFaultError):
                maintained.refresh(store)
        # The fault fired before the model was touched: the previous
        # materialization (and its tx) survive, and a retry catches up.
        assert maintained.model is before
        assert maintained.tx == 1
        model = maintained.refresh(store)
        assert model.equivalent(scratch_model(store))


class TestEvents:
    def test_maintain_delta_event(self, store):
        maintained = MaterializedModel(PROGRAM)
        events = []
        with hooks.subscribed(lambda kind, fields: events.append((kind, fields))):
            maintained.refresh(store)
            store.apply([assert_course(LOGIC)])
            maintained.refresh(store)
        deltas = [fields for kind, fields in events if kind == "maintain.delta"]
        assert len(deltas) == 2
        assert deltas[0]["recomputed"] is True
        assert deltas[1]["recomputed"] is False
        assert deltas[1]["inserted"] == 1
        assert deltas[1]["tx"] == 2


class TestMaintainerCache:
    def test_shared_per_store_and_program(self, tmp_path):
        cache = MaintainerCache()
        a = cache.get("/x", PROGRAM)
        assert cache.get("/x", PROGRAM) is a
        assert cache.get("/y", PROGRAM) is not a
        assert cache.get("/x", NEGATION) is not a
        assert len(cache) == 3

    def test_invalidate_by_root(self):
        cache = MaintainerCache()
        cache.get("/x", PROGRAM)
        cache.get("/y", PROGRAM)
        cache.invalidate("/x")
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0

    def test_commits_need_no_invalidation(self, store):
        cache = MaintainerCache()
        maintained = cache.get(store.root, PROGRAM)
        maintained.refresh(store)
        store.apply([assert_course(LOGIC)])
        # The same cached entry simply catches up by transaction id.
        model = cache.get(store.root, PROGRAM).refresh(store)
        assert model.equivalent(scratch_model(store))

    def test_module_level_cache_exists(self):
        assert isinstance(MAINTAINERS, MaintainerCache)
