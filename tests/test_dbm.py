"""Unit and property tests for the difference-bound matrix solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.dbm import Dbm, INF


def random_zone(size, bounds):
    zone = Dbm.unconstrained(size)
    for (i, j, c) in bounds:
        zone.add_bound(i % (size + 1), j % (size + 1), c)
    return zone


bound_lists = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(-8, 8)),
    max_size=6,
)


def brute_points(zone, low=-10, high=11):
    return set(zone.enumerate_in_box(low, high))


class TestBasics:
    def test_unconstrained_satisfiable(self):
        assert Dbm.unconstrained(3).is_satisfiable()

    def test_simple_contradiction(self):
        zone = Dbm.unconstrained(1)
        zone.add_bound(1, 0, 3)   # x1 <= 3
        zone.add_bound(0, 1, -4)  # x1 >= 4
        assert not zone.is_satisfiable()

    def test_strict_cycle_over_integers(self):
        # x1 < x2 and x2 < x1 + 1 has no integer solution.
        zone = Dbm.unconstrained(2)
        zone.add_bound(1, 2, -1)
        zone.add_bound(2, 1, 0)
        assert not zone.is_satisfiable()

    def test_tightening(self):
        zone = Dbm.unconstrained(2)
        zone.add_bound(1, 2, 5)
        zone.add_bound(2, 0, 3)  # x2 <= 3
        assert zone.bound(1, 0) == 8  # x1 <= x2 + 5 <= 8

    def test_difference_interval(self):
        zone = Dbm.unconstrained(2)
        zone.add_bound(1, 2, -1)  # x1 - x2 <= -1
        zone.add_bound(2, 1, 5)   # x2 - x1 <= 5
        assert zone.difference_interval(2, 1) == (1, 5)

    def test_unbounded_interval(self):
        zone = Dbm.unconstrained(2)
        lo, hi = zone.difference_interval(1, 2)
        assert lo == -INF and hi == INF

    def test_bad_index(self):
        with pytest.raises(IndexError):
            Dbm.unconstrained(2).add_bound(5, 0, 1)


class TestSatisfiedByAndSample:
    @given(bound_lists)
    def test_sample_in_zone(self, bounds):
        zone = random_zone(3, bounds)
        point = zone.sample()
        if zone.is_satisfiable():
            assert point is not None
            assert zone.satisfied_by(point)
        else:
            assert point is None

    @given(bound_lists)
    def test_satisfiability_matches_brute_force(self, bounds):
        zone = random_zone(2, bounds)
        brute = brute_points(zone, -20, 21)
        assert zone.is_satisfiable() == bool(brute) or zone.is_satisfiable()
        # If brute finds points, the zone must be satisfiable.
        if brute:
            assert zone.is_satisfiable()
        # If satisfiable, sample() is a witness even outside the box.
        if zone.is_satisfiable():
            assert zone.satisfied_by(zone.sample())


class TestContainmentAndEquality:
    def test_contains(self):
        big = Dbm.unconstrained(2)
        big.add_bound(1, 0, 10)
        small = big.copy()
        small.add_bound(1, 0, 5)
        assert big.contains(small)
        assert not small.contains(big)

    def test_empty_contained_everywhere(self):
        empty = Dbm.unconstrained(2)
        empty.add_bound(0, 0, -1)
        anything = Dbm.unconstrained(2)
        assert anything.contains(empty)
        assert not empty.contains(anything)

    @given(bound_lists, bound_lists)
    def test_contains_agrees_with_enumeration(self, b1, b2):
        a = random_zone(2, b1)
        b = random_zone(2, b2)
        pa, pb = brute_points(a), brute_points(b)
        if a.contains(b):
            assert pb <= pa

    def test_equality_canonical(self):
        a = Dbm.unconstrained(2)
        a.add_bound(1, 2, 0)
        a.add_bound(2, 0, 5)
        b = Dbm.unconstrained(2)
        b.add_bound(2, 0, 5)
        b.add_bound(1, 2, 0)
        b.add_bound(1, 0, 7)  # implied: x1 <= x2 <= 5 <= 7
        assert a == b
        assert hash(a) == hash(b)


class TestProjection:
    def test_project_shadow(self):
        zone = Dbm.unconstrained(2)
        zone.add_bound(1, 2, -1)  # x1 < x2
        zone.add_bound(2, 0, 10)  # x2 <= 10
        projected = zone.project_out(2)
        assert projected.size == 1
        assert projected.bound(1, 0) == 9  # x1 <= 9

    @given(bound_lists, st.integers(1, 3))
    @settings(max_examples=60)
    def test_projection_agrees_with_enumeration(self, bounds, victim):
        zone = random_zone(3, bounds)
        projected = zone.project_out(victim)
        box = brute_points(zone, -8, 9)
        shadow = {
            tuple(v for idx, v in enumerate(p) if idx != victim - 1) for p in box
        }
        projected_box = brute_points(projected, -8, 9)
        # The enumerated shadow is a subset of the projection restricted
        # to the box (projection can also pick witnesses outside the box).
        assert shadow <= projected_box


class TestDifferenceAndUnion:
    def test_difference_basic(self):
        whole = Dbm.unconstrained(1)
        whole.add_bound(1, 0, 10)   # x1 <= 10
        whole.add_bound(0, 1, 0)    # x1 >= 0
        hole = Dbm.unconstrained(1)
        hole.add_bound(1, 0, 7)
        hole.add_bound(0, 1, -3)    # 3 <= x1 <= 7
        pieces = whole.difference(hole)
        covered = set()
        for piece in pieces:
            covered |= {p[0] for p in piece.enumerate_in_box(-2, 13)}
        assert covered == {0, 1, 2, 8, 9, 10}

    def test_difference_disjoint_pieces(self):
        whole = Dbm.unconstrained(2)
        hole = Dbm.unconstrained(2)
        hole.add_bound(1, 2, 0)  # x1 <= x2
        pieces = whole.difference(hole)
        for a, b in itertools.combinations(pieces, 2):
            merged = a.copy()
            merged.conjoin(b)
            assert not merged.is_satisfiable()

    @given(bound_lists, bound_lists)
    @settings(max_examples=60)
    def test_difference_extensional(self, b1, b2):
        a = random_zone(2, b1)
        b = random_zone(2, b2)
        pieces = a.difference(b)
        expected = brute_points(a) - brute_points(b)
        got = set()
        for piece in pieces:
            got |= brute_points(piece)
        assert got == expected

    @given(bound_lists, bound_lists, bound_lists)
    @settings(max_examples=60)
    def test_subset_of_union_sound(self, b1, b2, b3):
        a = random_zone(2, b1)
        u1 = random_zone(2, b2)
        u2 = random_zone(2, b3)
        if a.is_subset_of_union([u1, u2]):
            assert brute_points(a) <= (brute_points(u1) | brute_points(u2))

    def test_subset_of_union_needs_both(self):
        line = Dbm.unconstrained(1)
        line.add_bound(1, 0, 10)
        line.add_bound(0, 1, 0)  # [0, 10]
        left = Dbm.unconstrained(1)
        left.add_bound(1, 0, 5)  # (-inf, 5]
        right = Dbm.unconstrained(1)
        right.add_bound(0, 1, -6)  # [6, inf)
        assert line.is_subset_of_union([left, right])
        assert not line.is_subset_of_union([left])
        assert not line.is_subset_of_union([right])


class TestGeneratingBounds:
    def test_equality_clique_not_lost(self):
        zone = Dbm.unconstrained(3)
        for (i, j) in ((1, 2), (2, 3)):
            zone.add_bound(i, j, 0)
            zone.add_bound(j, i, 0)
        rebuilt = Dbm.unconstrained(3)
        for (i, j, c) in zone.generating_bounds():
            rebuilt.add_bound(i, j, c)
        assert rebuilt == zone

    @given(bound_lists)
    def test_generating_bounds_regenerate(self, bounds):
        zone = random_zone(3, bounds)
        rebuilt = Dbm.unconstrained(3)
        for (i, j, c) in zone.generating_bounds():
            rebuilt.add_bound(i, j, c)
        if zone.is_satisfiable():
            assert rebuilt == zone
        else:
            assert not rebuilt.is_satisfiable()


class TestRenameEmbedShift:
    def test_renamed(self):
        zone = Dbm.unconstrained(2)
        zone.add_bound(1, 2, -1)  # x1 < x2
        swapped = zone.renamed({1: 2, 2: 1})
        assert swapped.bound(2, 1) == -1

    def test_embedded(self):
        zone = Dbm.unconstrained(1)
        zone.add_bound(1, 0, 5)
        wide = zone.embedded(3, {1: 2})
        assert wide.bound(2, 0) == 5
        assert wide.bound(1, 0) == INF

    def test_shift_variable(self):
        zone = Dbm.unconstrained(2)
        zone.add_bound(2, 1, 0)
        zone.add_bound(1, 2, 0)  # x1 = x2
        shifted = zone.shift_variable(2, 60)
        # Now x2 = x1 + 60.
        assert shifted.bound(2, 1) == 60
        assert shifted.bound(1, 2) == -60

    @given(bound_lists, st.integers(-20, 20))
    def test_shift_variable_extensional(self, bounds, delta):
        zone = random_zone(2, bounds)
        shifted = zone.shift_variable(1, delta)
        for point in zone.enumerate_in_box(-8, 9):
            moved = (point[0] + delta, point[1])
            assert shifted.satisfied_by(moved)
