"""Property tests for the ω-automata layer."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lrp import EventuallyPeriodicSet
from repro.omega import Dfa, Nfa
from repro.omega.expressiveness import characteristic_buchi, lasso_of_eps
from repro.omega.monoid import is_star_free

ALPHABET = ("0", "1")


@st.composite
def random_dfa(draw, max_states=4):
    n = draw(st.integers(1, max_states))
    states = list(range(n))
    delta = {
        (state, symbol): draw(st.integers(0, n - 1))
        for state in states
        for symbol in ALPHABET
    }
    accepting = {
        state for state in states if draw(st.booleans())
    }
    return Dfa(states, ALPHABET, delta, 0, accepting)


def words(limit):
    for length in range(limit + 1):
        yield from itertools.product(ALPHABET, repeat=length)


class TestDfaProperties:
    @given(random_dfa(), random_dfa())
    @settings(max_examples=40, deadline=None)
    def test_boolean_ops_extensional(self, a, b):
        meet = a.intersection(b)
        join = a.union(b)
        diff = a.difference(b)
        for word in words(5):
            fa, fb = a.accepts(word), b.accepts(word)
            assert meet.accepts(word) == (fa and fb)
            assert join.accepts(word) == (fa or fb)
            assert diff.accepts(word) == (fa and not fb)

    @given(random_dfa())
    @settings(max_examples=40, deadline=None)
    def test_minimize_preserves_language(self, dfa):
        small = dfa.minimize()
        assert len(small.states) <= len(dfa.states)
        for word in words(6):
            assert dfa.accepts(word) == small.accepts(word)

    @given(random_dfa())
    @settings(max_examples=40, deadline=None)
    def test_complement_involution(self, dfa):
        twice = dfa.complement().complement()
        assert dfa.equivalent(twice)

    @given(random_dfa())
    @settings(max_examples=40, deadline=None)
    def test_empty_iff_no_short_word(self, dfa):
        # A DFA with n states accepting anything accepts a word
        # shorter than n.
        has_short = any(dfa.accepts(word) for word in words(len(dfa.states)))
        assert dfa.is_empty() == (not has_short)

    @given(random_dfa())
    @settings(max_examples=30, deadline=None)
    def test_star_freeness_invariant_under_minimization(self, dfa):
        assert is_star_free(dfa) == is_star_free(dfa.minimize())

    @given(random_dfa())
    @settings(max_examples=30, deadline=None)
    def test_star_freeness_closed_under_complement(self, dfa):
        # Star-free languages are closed under complement; the
        # syntactic monoid of L and ~L coincide.
        assert is_star_free(dfa) == is_star_free(dfa.complement())


class TestNfaProperties:
    @given(random_dfa())
    @settings(max_examples=30, deadline=None)
    def test_determinize_of_dfa_as_nfa(self, dfa):
        transitions = {
            key: {target} for key, target in dfa.delta.items()
        }
        nfa = Nfa(dfa.states, ALPHABET, transitions, {dfa.initial}, dfa.accepting)
        det = nfa.determinize()
        for word in words(5):
            assert det.accepts(word) == dfa.accepts(word)


eps_values = st.builds(
    EventuallyPeriodicSet,
    st.integers(0, 4),
    st.integers(1, 5),
    st.sets(st.integers(0, 4), max_size=3),
    st.sets(st.integers(0, 3), max_size=3),
)


class TestCharacteristicAutomata:
    @given(eps_values, eps_values)
    @settings(max_examples=40, deadline=None)
    def test_characteristic_language_is_singleton(self, a, b):
        automaton = characteristic_buchi(a)
        prefix_b, loop_b = lasso_of_eps(b)
        accepted = automaton.accepts_lasso(prefix_b, loop_b)
        assert accepted == (a == b)
