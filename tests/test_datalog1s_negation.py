"""Stratified negation in Datalog1S (paper Section 3.2).

"When extended with stratified negation, these languages have a query
expressiveness that corresponds to the class of ω-regular languages."
The evaluator runs each stratum's frontier automaton against the fixed
closed-form sets of the strata below, with ``not`` atoms reading their
complements.
"""

import pytest

from repro.datalog1s import minimal_model, parse_datalog1s
from repro.lrp import EventuallyPeriodicSet
from repro.util.errors import SchemaError

CLOCKED = """
clock(0).
clock(t + 1) <- clock(t).
"""


class TestValidation:
    def test_negated_atom_accepted(self):
        program = parse_datalog1s(
            CLOCKED + "busy(0). busy(t+3) <- busy(t). idle(t) <- clock(t), not busy(t)."
        )
        assert len(program.strata()) == 2

    def test_negated_atom_arity_checked(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t) <- q(t), not r(t, u).")

    def test_recursion_through_negation_rejected(self):
        program = parse_datalog1s("p(0). p(t + 1) <- not p(t).")
        with pytest.raises(SchemaError):
            minimal_model(program)

    def test_negated_predecessor_rejected(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t) <- q(t), not q(t - 1).")


class TestEvaluation:
    def test_complement_of_periodic(self):
        program = parse_datalog1s(
            CLOCKED
            + """
            busy(0).
            busy(t + 3) <- busy(t).
            idle(t) <- clock(t), not busy(t).
            """
        )
        model = minimal_model(program)
        assert model.set_of("busy") == EventuallyPeriodicSet(
            period=3, residues=[0]
        )
        assert model.set_of("idle") == EventuallyPeriodicSet(
            period=3, residues=[1, 2]
        )

    def test_negation_with_offset(self):
        # lonely(t): an event with no event at the next instant.
        program = parse_datalog1s(
            """
            event(0).
            event(1).
            event(t + 5) <- event(t).
            lonely(t) <- event(t), not event(t + 1).
            """
        )
        model = minimal_model(program)
        lonely = model.set_of("lonely")
        # events at 0,1,5,6,10,11,…: 1, 6, 11, … are lonely.
        assert lonely == EventuallyPeriodicSet(period=5, residues=[1])

    def test_three_strata(self):
        program = parse_datalog1s(
            CLOCKED
            + """
            a(0).
            a(t + 2) <- a(t).
            b(t) <- clock(t), not a(t).
            c(t) <- clock(t), not b(t).
            """
        )
        model = minimal_model(program)
        # c = not b = a (on the clocked domain).
        assert model.set_of("c") == model.set_of("a")

    def test_negation_of_finite_set(self):
        program = parse_datalog1s(
            CLOCKED
            + """
            burst(2). burst(3). burst(4).
            calm(t) <- clock(t), not burst(t).
            """
        )
        model = minimal_model(program)
        calm = model.set_of("calm")
        assert 1 in calm and 5 in calm and 100 in calm
        assert 3 not in calm

    def test_negation_with_data(self):
        program = parse_datalog1s(
            """
            shift(0; ann). shift(t + 2; ann) <- shift(t; ann).
            shift(1; bob). shift(t + 2; bob) <- shift(t; bob).
            cover(t; ann) <- shift(t; bob), not shift(t; ann).
            """
        )
        model = minimal_model(program)
        # bob works odds; ann works evens; cover(ann) = odds.
        assert model.set_of("cover", ("ann",)) == EventuallyPeriodicSet(
            period=2, residues=[1]
        )

    def test_pure_negative_body(self):
        # A head ranging over all times where something does NOT hold.
        program = parse_datalog1s(
            """
            spike(4).
            quiet(t) <- not spike(t).
            """
        )
        model = minimal_model(program)
        quiet = model.set_of("quiet")
        assert 0 in quiet and 3 in quiet and 5 in quiet and 4 not in quiet

    def test_negation_against_edb_sets(self):
        program = parse_datalog1s(
            CLOCKED + "gap(t) <- clock(t), not feed(t)."
        )
        edb = {
            ("feed", ()): EventuallyPeriodicSet(period=4, residues=[0, 1])
        }
        model = minimal_model(program, edb=edb)
        assert model.set_of("gap") == EventuallyPeriodicSet(
            period=4, residues=[2, 3]
        )

    def test_random_programs_match_stratified_brute_force(self):
        import random

        rng = random.Random(42)
        for _ in range(12):
            base_step = rng.randrange(2, 7)
            offset = rng.randrange(0, 3)
            neg_shift = rng.randrange(0, 4)
            text = CLOCKED + (
                """
                base(%d).
                base(t + %d) <- base(t).
                derived(t) <- clock(t), not base(t + %d).
                """
                % (offset, base_step, neg_shift)
            )
            program = parse_datalog1s(text)
            model = minimal_model(program)
            # Stratified hand semantics on a window.
            horizon = 160
            base = {
                t
                for t in range(horizon + neg_shift + 1)
                if t >= offset and (t - offset) % base_step == 0
            }
            for t in range(horizon - base_step):
                expected = (t + neg_shift) not in base
                assert model.holds("derived", t) == expected, (text, t)

    def test_agrees_with_core_engine(self):
        # The same stratified program evaluated by the Datalog1S
        # frontier automaton and by the generalized-tuple engine.
        from repro.core import DeductiveEngine, parse_program
        from repro.gdb import parse_database

        d1s = parse_datalog1s(
            CLOCKED
            + """
            busy(0).
            busy(t + 3) <- busy(t).
            idle(t) <- clock(t), not busy(t).
            """
        )
        model_1s = minimal_model(d1s)

        edb = parse_database("relation seed[1; 0] { (3n) where T1 >= 0; }")
        core = parse_program(
            """
            busy(t) <- seed(t).
            idle(t) <- not busy(t), t >= 0.
            """
        )
        model_core = DeductiveEngine(core, edb).run()
        window = range(0, 90)
        core_idle = {t for (t,) in model_core.extension("idle", 0, 90)}
        d1s_idle = {t for t in window if model_1s.holds("idle", t)}
        assert core_idle == d1s_idle
