"""Run the doctests embedded in the library's docstrings.

Keeping the examples in the API documentation executable guards
against documentation rot; every public module with examples is
listed here.
"""

import doctest

import pytest

import repro.constraints.atoms
import repro.constraints.dbm
import repro.constraints.system
import repro.core.engine
import repro.fo
import repro.fo.evaluator
import repro.gdb.database
import repro.gdb.relation
import repro.gdb.tuple
import repro.lrp.congruence
import repro.lrp.periodic_set
import repro.lrp.point
import repro.omega.monoid
import repro.util.lexing

MODULES = [
    repro.lrp.congruence,
    repro.lrp.point,
    repro.lrp.periodic_set,
    repro.constraints.dbm,
    repro.constraints.system,
    repro.constraints.atoms,
    repro.gdb.tuple,
    repro.gdb.relation,
    repro.gdb.database,
    repro.core.engine,
    repro.fo,
    repro.fo.evaluator,
    repro.omega.monoid,
    repro.util.lexing,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, "%d doctest failures in %s" % (
        results.failed,
        module.__name__,
    )
    assert results.attempted > 0, "no doctests found in %s" % module.__name__
