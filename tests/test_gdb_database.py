"""Tests for the database container and the text format parser."""

import pytest

from repro.gdb import (
    GeneralizedDatabase,
    GeneralizedTuple,
    parse_database,
    parse_generalized_tuple,
)
from repro.lrp import Lrp
from repro.util.errors import ParseError, SchemaError

TRAIN_DB = """
% Example 2.1 of the paper: Liege -> Brussels trains.
relation train[2; 2] {
  (40n+5, 40n+65; "Liege", "Brussels") where T1 >= 0 & T2 = T1 + 60;
}
"""

COURSE_DB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
"""


class TestDatabase:
    def test_declare_and_add(self):
        db = GeneralizedDatabase()
        db.declare("p", 1, 0)
        db.add_tuple("p", GeneralizedTuple((Lrp(2, 0),)))
        assert len(db.relation("p")) == 1
        assert "p" in db

    def test_declare_idempotent(self):
        db = GeneralizedDatabase()
        db.declare("p", 1, 0)
        db.declare("p", 1, 0)
        assert db.names() == ["p"]

    def test_redeclare_conflict(self):
        db = GeneralizedDatabase()
        db.declare("p", 1, 0)
        with pytest.raises(SchemaError):
            db.declare("p", 2, 0)

    def test_unknown_relation(self):
        db = GeneralizedDatabase()
        with pytest.raises(SchemaError):
            db.relation("nope")

    def test_set_relation_schema_check(self):
        from repro.gdb import GeneralizedRelation

        db = GeneralizedDatabase()
        db.declare("p", 1, 0)
        with pytest.raises(SchemaError):
            db.set_relation("p", GeneralizedRelation.empty(2, 0))

    def test_copy_is_independent(self):
        db = GeneralizedDatabase()
        db.declare("p", 1, 0)
        clone = db.copy()
        clone.add_tuple("p", GeneralizedTuple((Lrp(2, 0),)))
        assert len(db.relation("p")) == 0
        assert len(clone.relation("p")) == 1


class TestParser:
    def test_train_example(self):
        db = parse_database(TRAIN_DB)
        train = db.relation("train")
        assert len(train) == 1
        assert train.contains_point((5, 65), ("Liege", "Brussels"))
        assert train.contains_point((45, 105), ("Liege", "Brussels"))
        assert not train.contains_point((-35, 25), ("Liege", "Brussels"))

    def test_course_example(self):
        db = parse_database(COURSE_DB)
        course = db.relation("course")
        assert course.contains_point((176, 178), ("database",))

    def test_constant_entries(self):
        gt = parse_generalized_tuple("(5, 65)", 2)
        assert gt.contains_point((5, 65))
        assert not gt.contains_point((5, 66))
        assert not gt.contains_point((45, 105))

    def test_negative_constant(self):
        gt = parse_generalized_tuple("(-7)", 1)
        assert gt.contains_point((-7,))
        assert not gt.contains_point((7,))

    def test_bare_n(self):
        gt = parse_generalized_tuple("(n)", 1)
        assert gt.contains_point((123,))

    def test_n_with_offset(self):
        gt = parse_generalized_tuple("(5n-2)", 1)
        assert gt.lrps == (Lrp(5, 3),)

    def test_data_kinds(self):
        gt = parse_generalized_tuple('(n; "quoted", bare, 42)', 1, 3)
        assert gt.data == ("quoted", "bare", 42)

    def test_where_with_and(self):
        gt = parse_generalized_tuple("(n, n) where T1 >= 0 and T2 = T1 + 1", 2)
        assert gt.contains_point((3, 4))
        assert not gt.contains_point((3, 5))

    def test_multiple_relations(self):
        db = parse_database(TRAIN_DB + COURSE_DB)
        assert set(db.names()) == {"train", "course"}

    def test_empty_relation(self):
        db = parse_database("relation p[1; 0] {}")
        assert db.relation("p").is_empty()

    def test_multiple_tuples(self):
        db = parse_database(
            """
            relation p[1; 0] {
              (2n);
              (2n+1) where T1 >= 0;
            }
            """
        )
        assert len(db.relation("p")) == 2

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_generalized_tuple("(n) nonsense", 1)

    def test_missing_brace(self):
        with pytest.raises(ParseError):
            parse_database("relation p[1; 0] { (n);")

    def test_bad_constraint_variable(self):
        with pytest.raises(ParseError):
            parse_generalized_tuple("(n) where T5 = 0", 1)

    def test_roundtrip_through_str(self):
        db = parse_database(TRAIN_DB)
        text = str(db)
        again = parse_database(text)
        assert again.relation("train").equivalent(db.relation("train"))
