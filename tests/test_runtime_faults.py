"""Fault injection: deterministic faults at named runtime sites must
surface as typed :class:`ReproError`\\ s carrying a usable partial
model, and resuming from a pre-fault checkpoint must converge to the
same model as an uninterrupted run."""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.runtime.budget import EvaluationBudget
from repro.runtime.faults import (
    SITES,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    TransientFaultError,
)
from repro.util import hooks
from repro.util.errors import (
    BudgetExceededError,
    EvaluationAbortedError,
    PartialResultError,
    ReproError,
    WorkerDiedError,
)

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
relation seed[1; 0] { (n) where T1 = 0; }
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


def make_engine(**kwargs):
    return DeductiveEngine(
        parse_program(PROGRAM), parse_database(EDB), **kwargs
    )


def canon(relation):
    return sorted(gt.canonical_key() for gt in relation.tuples)


class TestFaultPlanMechanics:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="nonsense")
        with pytest.raises(ValueError):
            FaultSpec(site="clause", at=0)

    def test_hook_installed_and_cleared(self):
        plan = FaultPlan.inject("round", at=10_000)
        assert hooks.FAULT_HOOK is None
        with plan.installed():
            assert hooks.FAULT_HOOK is plan
        assert hooks.FAULT_HOOK is None

    def test_hook_cleared_after_fault(self):
        plan = FaultPlan.inject("round", at=1)
        with pytest.raises(EvaluationAbortedError):
            with plan.installed():
                make_engine().run()
        assert hooks.FAULT_HOOK is None

    def test_nesting_rejected(self):
        plan = FaultPlan.inject("round", at=10_000)
        with plan.installed():
            with pytest.raises(RuntimeError):
                with FaultPlan.inject("clause").installed():
                    pass

    def test_hit_counting(self):
        plan = FaultPlan.inject("round", at=3)
        with pytest.raises(EvaluationAbortedError):
            with plan.installed():
                make_engine().run()
        assert plan.hits["round"] == 3

    def test_service_sites_registered(self):
        for site in ("submit", "worker_start", "result_return"):
            assert site in SITES
            FaultSpec(site=site)  # accepted by validation

    def test_transient_error_is_injected_fault_subclass(self):
        assert issubclass(TransientFaultError, InjectedFaultError)
        error = TransientFaultError("clause", 7)
        assert error.site == "clause"
        assert error.hit == 7

    def test_every_fires_periodically(self):
        spec = FaultSpec(site="clause", at=3, every=4)
        assert [hit for hit in range(1, 16) if spec.triggers_on(hit)] == [3, 7, 11, 15]

    def test_every_requires_positive_period(self):
        with pytest.raises(ValueError):
            FaultSpec(site="clause", every=0)

    def test_periodic_injection_in_engine(self):
        # every=2 from hit 1: the first clause evaluation already faults.
        plan = FaultPlan.inject("clause", at=1, every=2)
        with pytest.raises(EvaluationAbortedError):
            with plan.installed():
                make_engine().run()
        assert plan.hits["clause"] == 1

    def test_from_json_dict(self):
        plan = FaultPlan.from_json_dict(
            {
                "specs": [
                    {"site": "worker_start", "at": 3, "error": "worker-died"},
                    {"site": "clause", "at": 20, "every": 61, "error": "transient"},
                    {"site": "round", "at": 1, "delay_seconds": 0.01},
                ]
            }
        )
        assert len(plan.specs) == 3
        assert plan.specs[0].error is WorkerDiedError
        assert plan.specs[1].error is TransientFaultError
        assert plan.specs[1].every == 61
        assert plan.specs[2].delay_seconds == 0.01

    def test_from_json_dict_rejects_unknown_error_name(self):
        with pytest.raises(ValueError):
            FaultPlan.from_json_dict(
                [{"site": "clause", "error": "nonsense"}]
            )


#: Sites a bare engine run hits (the service-layer sites — submit,
#: worker_start, result_return — are exercised in tests/test_service.py).
ENGINE_SITES = ("clause", "dbm_canonicalize", "coverage", "round")


class TestInjectedFaults:
    @pytest.mark.parametrize("site", ENGINE_SITES)
    @pytest.mark.parametrize("at", [1, 3])
    def test_every_site_yields_typed_error_with_partial_model(self, site, at):
        engine = make_engine()
        plan = FaultPlan.inject(site, at=at)
        with pytest.raises(EvaluationAbortedError) as info:
            with plan.installed():
                engine.run()
        error = info.value
        assert isinstance(error, ReproError)
        assert isinstance(error, PartialResultError)
        assert isinstance(error.__cause__, InjectedFaultError)
        assert error.__cause__.site == site
        assert error.partial_model is not None
        # the partial model is usable: window query + stats
        error.partial_model.extension("problems", 0, 300)
        assert error.stats is not None
        assert error.stats.rounds >= 1

    def test_checkpoint_write_fault(self, tmp_path):
        engine = make_engine()
        plan = FaultPlan.inject("checkpoint_write", at=2)
        path = str(tmp_path / "ck.json")
        with pytest.raises(EvaluationAbortedError) as info:
            with plan.installed():
                engine.run(checkpoint_every=1, checkpoint_path=path)
        assert isinstance(info.value.__cause__, InjectedFaultError)
        # the first checkpoint survived the crash of the second write
        assert (tmp_path / "ck.json").exists()

    def test_custom_error_class(self):
        plan = FaultPlan.inject("clause", at=2, error=MemoryError)
        with pytest.raises(EvaluationAbortedError) as info:
            with plan.installed():
                make_engine().run()
        assert isinstance(info.value.__cause__, MemoryError)

    def test_delay_plus_deadline(self):
        plan = FaultPlan.delay("round", at=1, seconds=0.05)
        with pytest.raises(BudgetExceededError) as info:
            with plan.installed():
                make_engine().run(
                    budget=EvaluationBudget(deadline_seconds=0.01)
                )
        assert info.value.limit == "deadline_seconds"
        assert info.value.partial_model is not None


class TestResumeAfterCrash:
    def test_resume_from_pre_fault_checkpoint_converges(self, tmp_path):
        """The ISSUE acceptance test: crash mid-fixpoint, resume from
        the last checkpoint, and reach the same model as a run that was
        never interrupted."""
        clean = make_engine().run()

        path = str(tmp_path / "crash.ckpt.json")
        plan = FaultPlan.inject("round", at=5)
        with pytest.raises(EvaluationAbortedError) as info:
            with plan.installed():
                make_engine().run(checkpoint_every=1, checkpoint_path=path)
        crashed = info.value.partial_model
        assert crashed.stats.rounds == 5
        assert len(canon(crashed.relation("problems"))) < len(
            canon(clean.relation("problems"))
        )

        resumed = make_engine().run(resume_from=path)
        assert canon(resumed.relation("problems")) == canon(
            clean.relation("problems")
        )
        assert resumed.stats.rounds == clean.stats.rounds
        assert (
            resumed.stats.new_tuples_per_round
            == clean.stats.new_tuples_per_round
        )
        assert resumed.stats.constraint_safe

    def test_repeated_fault_still_recoverable(self, tmp_path):
        """Even a fault that fires on every later round leaves behind a
        checkpoint trail that a fault-free resume completes."""
        path = str(tmp_path / "flaky.ckpt.json")
        plan = FaultPlan.inject("clause", at=9, repeat=True)
        with pytest.raises(EvaluationAbortedError):
            with plan.installed():
                make_engine().run(checkpoint_every=1, checkpoint_path=path)
        resumed = make_engine().run(resume_from=path)
        clean = make_engine().run()
        assert canon(resumed.relation("problems")) == canon(
            clean.relation("problems")
        )
