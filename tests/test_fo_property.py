"""Randomized cross-validation of the FO evaluator.

Hypothesis generates guarded formulas (every temporal variable is
fenced into ``[0, BOUND)``), which makes brute-force evaluation over
the window exact; the algebraic evaluator must agree on every
assignment.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fo import evaluate_query
from repro.fo.ast import free_variables, parse_formula
from repro.gdb import parse_database

BOUND = 12

DB_TEXT = """
relation p[1; 0] { (3n) where T1 >= 0; }
relation q[1; 0] { (4n+1) where T1 >= 0; }
relation r[2; 0] { (2n, 2n) where T1 >= 0 & T2 = T1 + 2; }
"""


def database():
    return parse_database(DB_TEXT)


def guard(var):
    return "%s >= 0 and %s < %d" % (var, var, BOUND)


@st.composite
def guarded_formula(draw, variables=("t", "u")):
    """A formula whose every variable is guarded into [0, BOUND)."""

    def atom(depth):
        choice = draw(st.integers(0, 5 if depth > 0 else 3))
        v = draw(st.sampled_from(variables))
        w = draw(st.sampled_from(variables))
        if choice == 0:
            return "p(%s)" % v
        if choice == 1:
            return "q(%s)" % v
        if choice == 2:
            return "r(%s, %s)" % (v, w)
        if choice == 3:
            c = draw(st.integers(-3, 3))
            op = draw(st.sampled_from(["<", "<=", "=", ">="]))
            sign = "+" if c >= 0 else "-"
            return "%s %s %s %s %d" % (v, op, w, sign, abs(c))
        if choice == 4:
            return "not (%s)" % formula(depth - 1)
        sub = formula(depth - 1)
        bound_var = draw(st.sampled_from(variables))
        return "exists %s ((%s) and %s)" % (bound_var, sub, guard(bound_var))

    def formula(depth):
        parts = [atom(depth) for _ in range(draw(st.integers(1, 2)))]
        connective = draw(st.sampled_from([" and ", " or "]))
        return connective.join("(%s)" % part for part in parts)

    body = formula(2)
    # Guard every free variable.
    parsed = parse_formula(body)
    temporal, _ = free_variables(parsed)
    guards = [guard(v) for v in temporal]
    if guards:
        body = "(%s) and %s" % (body, " and ".join(guards))
    return body


def brute_truth(db, node, assignment):
    from repro.fo.ast import (
        FoAnd,
        FoAtom,
        FoComparison,
        FoExists,
        FoForAll,
        FoNot,
        FoOr,
    )

    if isinstance(node, FoAtom):
        times = tuple(
            assignment[t.var] + t.offset if t.var else t.offset
            for t in node.atom.temporal_args
        )
        return db.relation(node.atom.predicate).contains_point(times)
    if isinstance(node, FoComparison):
        def value(term):
            return (assignment[term.var] if term.var else 0) + term.offset

        left, right = value(node.atom.left), value(node.atom.right)
        return {
            "<": left < right,
            "<=": left <= right,
            "=": left == right,
            ">=": left >= right,
            ">": left > right,
        }[node.atom.op]
    if isinstance(node, FoAnd):
        return all(brute_truth(db, part, assignment) for part in node.parts)
    if isinstance(node, FoOr):
        return any(brute_truth(db, part, assignment) for part in node.parts)
    if isinstance(node, FoNot):
        return not brute_truth(db, node.sub, assignment)
    if isinstance(node, FoExists):
        values = range(-2, BOUND + 2)
        for combo in itertools.product(values, repeat=len(node.variables)):
            extended = dict(assignment)
            extended.update(zip(node.variables, combo))
            if brute_truth(db, node.sub, extended):
                return True
        return False
    if isinstance(node, FoForAll):
        values = range(-2, BOUND + 2)
        for combo in itertools.product(values, repeat=len(node.variables)):
            extended = dict(assignment)
            extended.update(zip(node.variables, combo))
            if not brute_truth(db, node.sub, extended):
                return False
        return True
    raise TypeError(node)


@given(guarded_formula())
@settings(max_examples=40, deadline=None)
def test_fo_evaluator_matches_brute_force(text):
    db = database()
    formula = parse_formula(text)
    temporal, data = free_variables(formula)
    assert not data
    answers = evaluate_query(db, formula)
    for combo in itertools.product(range(-2, BOUND + 2), repeat=len(temporal)):
        assignment = dict(zip(temporal, combo))
        expected = brute_truth(db, formula, assignment)
        got = answers.relation.contains_point(
            tuple(assignment[v] for v in answers.temporal_vars)
        )
        assert got == expected, (text, assignment)
