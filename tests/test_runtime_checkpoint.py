"""Checkpoint/resume: round-granular snapshots restore the fixpoint
environment bit-identically — resuming from ANY checkpoint converges to
the same canonical model and the same stats (modulo timings)."""

import json
import shutil
import threading

import pytest

import repro.core.engine as engine_module
from repro.constraints.system import ConstraintSystem
from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.tuple import GeneralizedTuple
from repro.runtime.checkpoint import (
    Checkpoint,
    engine_fingerprint,
    load_checkpoint,
    write_checkpoint,
)
from repro.util.errors import CheckpointError

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
relation seed[1; 0] { (n) where T1 = 0; }
"""

PROGRAM = """
problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


def make_engine(program_text=PROGRAM, **kwargs):
    return DeductiveEngine(
        parse_program(program_text), parse_database(EDB), **kwargs
    )


def canon(relation):
    return sorted(gt.canonical_key() for gt in relation.tuples)


def model_keys(model):
    return {name: canon(model.relation(name)) for name in model.predicates()}


def comparable_stats(stats):
    """Stats dict minus fields legitimately differing across a resume."""
    payload = stats.to_dict()
    for volatile in (
        "elapsed_seconds",
        "prior_elapsed_seconds",
        "segment_elapsed_seconds",
        "resumed_from_round",
        "checkpoints_written",
    ):
        payload.pop(volatile)
    return payload


@pytest.fixture
def every_checkpoint(tmp_path, monkeypatch):
    """Run Example 4.1 checkpointing every round, keeping a copy of
    each snapshot; returns (clean_model, [checkpoint paths])."""
    path = tmp_path / "run.ckpt.json"
    copies = []
    original = engine_module.write_checkpoint

    def copying_write(target, checkpoint):
        original(target, checkpoint)
        copy = tmp_path / ("round%d.ckpt.json" % len(copies))
        shutil.copyfile(target, copy)
        copies.append(str(copy))

    monkeypatch.setattr(engine_module, "write_checkpoint", copying_write)
    model = make_engine().run(checkpoint_every=1, checkpoint_path=str(path))
    monkeypatch.setattr(engine_module, "write_checkpoint", original)
    return model, copies


class TestResume:
    def test_resume_from_every_checkpoint_is_bit_identical(
        self, every_checkpoint
    ):
        clean, copies = every_checkpoint
        assert clean.stats.checkpoints_written == len(copies) > 1
        for copy in copies:
            resumed = make_engine().run(resume_from=copy)
            assert model_keys(resumed) == model_keys(clean)
            assert comparable_stats(resumed.stats) == comparable_stats(
                clean.stats
            )
            assert resumed.stats.resumed_from_round is not None

    def test_resume_restores_progress_counters(self, every_checkpoint):
        clean, copies = every_checkpoint
        resumed = make_engine().run(resume_from=copies[2])
        assert resumed.stats.resumed_from_round == 3
        assert resumed.stats.rounds == clean.stats.rounds
        assert (
            resumed.stats.new_tuples_per_round
            == clean.stats.new_tuples_per_round
        )

    def test_checkpoint_validation_requires_path(self):
        with pytest.raises(ValueError):
            make_engine().run(checkpoint_every=1)
        with pytest.raises(ValueError):
            make_engine().run(checkpoint_every=0, checkpoint_path="x")

    def test_fingerprint_mismatch(self, every_checkpoint):
        _, copies = every_checkpoint
        other = make_engine(
            """
            q(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
            """
        )
        with pytest.raises(CheckpointError):
            other.run(resume_from=copies[0])

    def test_strategy_changes_fingerprint(self):
        semi = make_engine().fingerprint()
        naive = make_engine(strategy="naive").fingerprint()
        assert semi != naive


class TestCheckpointFiles:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.json"))

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_wrong_format(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_round_trip(self, tmp_path):
        relation = parse_database(EDB).relation("course")
        signatures = {gt.free_signature() for gt in relation.tuples}
        checkpoint = Checkpoint(
            fingerprint=engine_fingerprint("p", "e", "semi-naive", "paper"),
            stratum_index=0,
            rounds_in_stratum=2,
            last_growth=1,
            env={"problems": relation},
            known_signatures={"problems": signatures},
            stats={"rounds": 2},
            delta=None,
            complements={},
        )
        path = str(tmp_path / "ck.json")
        write_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.fingerprint == checkpoint.fingerprint
        assert loaded.rounds_in_stratum == 2
        assert canon(loaded.env["problems"]) == canon(relation)
        assert set(loaded.known_signatures["problems"]) == signatures


class TestTypedLoadErrors:
    """Every load failure is a CheckpointError locating the damage:
    the path always, the byte offset when the JSON decoder knows it."""

    def test_corrupt_json_carries_path_and_offset(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-checkpoint", !garbage')
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(str(path))
        assert excinfo.value.path == str(path)
        assert excinfo.value.offset == 31
        assert "at byte 31" in str(excinfo.value)

    def test_truncated_file_carries_offset(self, tmp_path):
        whole = tmp_path / "whole.json"
        make_engine().run(checkpoint_every=1, checkpoint_path=str(whole))
        torn = tmp_path / "torn.json"
        torn.write_bytes(whole.read_bytes()[: whole.stat().st_size // 2])
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(str(torn))
        assert excinfo.value.path == str(torn)
        assert excinfo.value.offset is not None

    def test_unreadable_file_carries_path(self, tmp_path):
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(str(tmp_path / "nope.json"))
        assert excinfo.value.path == str(tmp_path / "nope.json")


class TestPayloadDigest:
    """Checkpoints self-verify: the written file carries a sha256 of
    its own payload, checked on load; files from before the digest was
    introduced (no ``digest`` key) still load."""

    def write_one(self, tmp_path):
        path = str(tmp_path / "ck.json")
        make_engine().run(checkpoint_every=1, checkpoint_path=path)
        return path

    def test_written_checkpoints_carry_digest(self, tmp_path):
        path = self.write_one(tmp_path)
        payload = json.loads(open(path).read())
        assert len(payload["digest"]) == 64
        load_checkpoint(path)  # verifies without complaint

    def test_bit_rot_detected(self, tmp_path):
        path = self.write_one(tmp_path)
        text = open(path).read()
        # Flip one digit inside the payload without breaking the JSON.
        assert '"rounds_in_stratum": ' in text or '"rounds_in_stratum":' in text
        rotted = text.replace('"last_growth"', '"last_gr0wth"', 1)
        assert rotted != text
        open(path, "w").write(rotted)
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert "digest" in str(excinfo.value)
        assert excinfo.value.path == path

    def test_digestless_legacy_checkpoint_accepted(self, tmp_path):
        path = self.write_one(tmp_path)
        payload = json.loads(open(path).read())
        del payload["digest"]
        open(path, "w").write(json.dumps(payload))
        loaded = load_checkpoint(path)
        assert loaded.stats["rounds"] >= 1

    def test_resumed_run_verifies_digest_end_to_end(self, tmp_path):
        path = str(tmp_path / "resume.ckpt.json")
        uninterrupted = make_engine().run(
            checkpoint_every=1, checkpoint_path=path
        )
        resumed = make_engine().run(resume_from=path)
        assert resumed.equivalent(uninterrupted)


class TestDurability:
    """Atomic, durable checkpoint writes: staged through a temp file,
    fsynced, renamed into place — and leftover temp files are refused
    with a clean typed error instead of being deserialized."""

    def make_checkpoint(self):
        relation = parse_database(EDB).relation("course")
        return Checkpoint(
            fingerprint=engine_fingerprint("p", "e", "semi-naive", "paper"),
            stratum_index=0,
            rounds_in_stratum=1,
            last_growth=1,
            env={"problems": relation},
            known_signatures={"problems": set()},
            stats={"rounds": 1},
        )

    def test_no_temp_file_left_after_write(self, tmp_path):
        path = tmp_path / "ck.json"
        write_checkpoint(str(path), self.make_checkpoint())
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "ck.json"]
        assert leftovers == []

    def test_leftover_tmp_path_is_refused(self, tmp_path):
        # A crash between the staged write and os.replace leaves
        # <path>.tmp.<pid>.<tid> behind; loading it must fail cleanly
        # even if its contents happen to be valid JSON.
        for name in ("ck.json.tmp", "ck.json.tmp.12345", "ck.json.tmp.12345.678"):
            torn = tmp_path / name
            torn.write_text(json.dumps({"format": "repro-checkpoint"}))
            with pytest.raises(CheckpointError) as info:
                load_checkpoint(str(torn))
            assert "temporary" in str(info.value)

    def test_concurrent_writers_to_one_path_never_collide(self, tmp_path):
        # Two threads writing the same checkpoint path (an abandoned
        # worker racing its replacement) stage through distinct temp
        # files, so neither can unlink or rename the other's staging
        # file out from under it.
        path = str(tmp_path / "ck.json")
        checkpoint = self.make_checkpoint()
        errors = []

        def hammer():
            try:
                for _ in range(25):
                    write_checkpoint(path, checkpoint)
            except Exception as error:  # pragma: no cover - the bug
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert load_checkpoint(path).rounds_in_stratum == 1
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "ck.json"]
        assert leftovers == []

    def test_committed_file_unreadable_mid_write_never_torn(self, tmp_path):
        # Simulate the crash: stage a temp file but never rename it.
        # The committed path still loads the previous checkpoint.
        path = tmp_path / "ck.json"
        write_checkpoint(str(path), self.make_checkpoint())
        (tmp_path / "ck.json.tmp.999").write_text("{ torn garba")
        loaded = load_checkpoint(str(path))
        assert loaded.rounds_in_stratum == 1

    def test_write_failure_preserves_previous_checkpoint(self, tmp_path, monkeypatch):
        path = tmp_path / "ck.json"
        first = self.make_checkpoint()
        write_checkpoint(str(path), first)

        def exploding_replace(src, dst):
            raise OSError("disk gone")

        monkeypatch.setattr("repro.runtime.checkpoint.os.replace", exploding_replace)
        second = self.make_checkpoint()
        second.rounds_in_stratum = 7
        with pytest.raises(OSError):
            write_checkpoint(str(path), second)
        monkeypatch.undo()
        assert load_checkpoint(str(path)).rounds_in_stratum == 1
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "ck.json"]
        assert leftovers == []


class TestJsonSerialization:
    def test_constraint_system_round_trip(self):
        relation = parse_database(EDB).relation("course")
        for gt in relation.tuples:
            system = gt.constraints
            rebuilt = ConstraintSystem.from_json_dict(system.to_json_dict())
            assert rebuilt.canonical_key() == system.canonical_key()

    def test_empty_zone_survives(self):
        bottom = ConstraintSystem.bottom(2)
        rebuilt = ConstraintSystem.from_json_dict(bottom.to_json_dict())
        assert not rebuilt.is_satisfiable()
        assert rebuilt.canonical_key() == bottom.canonical_key()

    def test_tuple_and_relation_round_trip(self):
        relation = parse_database(EDB).relation("course")
        rebuilt = GeneralizedRelation.from_json_dict(relation.to_json_dict())
        assert rebuilt.temporal_arity == relation.temporal_arity
        assert rebuilt.data_arity == relation.data_arity
        assert canon(rebuilt) == canon(relation)
        gt = relation.tuples[0]
        assert (
            GeneralizedTuple.from_json_dict(gt.to_json_dict()).canonical_key()
            == gt.canonical_key()
        )


class TestElapsedAccumulation:
    """A resumed run must report wall-clock for the WHOLE computation,
    not just the post-resume segment (pre-PR regression: checkpoints
    froze ``elapsed_seconds`` at 0.0 and ``restore_progress`` dropped
    the first segment entirely)."""

    def test_checkpoints_carry_live_elapsed(self, every_checkpoint):
        _, copies = every_checkpoint
        for copy in copies:
            assert load_checkpoint(copy).stats["elapsed_seconds"] > 0.0

    def test_resume_accumulates_across_segments(self, every_checkpoint):
        _, copies = every_checkpoint
        mid = load_checkpoint(copies[2])
        resumed = make_engine().run(resume_from=copies[2])
        stats = resumed.stats
        assert stats.prior_elapsed_seconds == pytest.approx(
            mid.stats["elapsed_seconds"]
        )
        assert stats.prior_elapsed_seconds > 0.0
        assert stats.elapsed_seconds > stats.prior_elapsed_seconds
        payload = stats.to_dict()
        assert payload["segment_elapsed_seconds"] == pytest.approx(
            stats.elapsed_seconds - stats.prior_elapsed_seconds
        )

    def test_double_resume_keeps_accumulating(self, tmp_path, every_checkpoint):
        # Resume from round 2, checkpoint again, resume from round 5:
        # the second resume's prior covers segments one AND two.
        _, copies = every_checkpoint
        first_prior = load_checkpoint(copies[1]).stats["elapsed_seconds"]
        path = tmp_path / "second.ckpt.json"
        make_engine().run(
            resume_from=copies[1],
            checkpoint_every=3,
            checkpoint_path=str(path),
        )
        second = load_checkpoint(str(path))
        assert second.stats["elapsed_seconds"] > first_prior
        final = make_engine().run(resume_from=str(path))
        assert final.stats.prior_elapsed_seconds == pytest.approx(
            second.stats["elapsed_seconds"]
        )
        assert final.stats.elapsed_seconds > first_prior
