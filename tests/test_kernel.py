"""The columnar kernel: batched canonicalization, interning, batch ops,
the column store's generation counter, and the shard wire codec.

The batch helpers must be *exactly* equivalent to the per-tuple loops
they replace (the kernel-off ablation), including the alignment rule
that an unsatisfiable result appears as None in the output list.
"""

import pytest

from repro.constraints.atoms import Comparison, TemporalTerm
from repro.constraints.dbm import (
    CONSTRAINT_TABLE,
    ConstraintTable,
    Dbm,
    canonicalize_batch,
)
from repro.constraints.system import ConstraintSystem
from repro.gdb import kernel
from repro.gdb.relation import GeneralizedRelation
from repro.gdb.store import (
    decode_relation_batch,
    decode_tuple_batch,
    encode_relation_batch,
    encode_tuple_batch,
)
from repro.gdb.tuple import GeneralizedTuple
from repro.lrp.point import Lrp
from repro.util import hooks


class _ClosureCounter:
    """Counts Floyd–Warshall closures via the dbm_canonicalize site."""

    def __init__(self):
        self.count = 0

    def __call__(self, site):
        if site == "dbm_canonicalize":
            self.count += 1


def _sat_zone():
    zone = Dbm.unconstrained(2)
    zone.add_bound(1, 2, -1)  # x1 - x2 <= -1
    zone.add_bound(2, 1, 5)   # x2 - x1 <= 5
    return zone


def _unsat_zone():
    zone = Dbm.unconstrained(2)
    zone.add_bound(1, 0, -1)  # x1 <= -1
    zone.add_bound(0, 1, 0)   # x1 >= 0
    return zone


class TestCanonicalizeBatch:
    def test_empty_batch(self):
        assert canonicalize_batch([]) == []

    def test_all_duplicate_batch_closes_once(self):
        zones = [_sat_zone() for _ in range(4)]
        counter = _ClosureCounter()
        saved = hooks.FAULT_HOOK
        hooks.FAULT_HOOK = counter
        try:
            results = canonicalize_batch(zones)
        finally:
            hooks.FAULT_HOOK = saved
        assert counter.count == 1
        assert all(result is results[0] for result in results)
        assert results[0] is not None

    def test_unsatisfiable_is_none_mid_batch(self):
        zones = [_sat_zone(), _unsat_zone(), _sat_zone()]
        results = canonicalize_batch(zones)
        assert len(results) == 3
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert results[0] is results[2]
        assert results[0].is_satisfiable()

    def test_distinct_zones_each_close(self):
        loose = Dbm.unconstrained(2)
        loose.add_bound(1, 2, 7)
        zones = [_sat_zone(), loose, _sat_zone(), loose.copy()]
        counter = _ClosureCounter()
        saved = hooks.FAULT_HOOK
        hooks.FAULT_HOOK = counter
        try:
            results = canonicalize_batch(zones)
        finally:
            hooks.FAULT_HOOK = saved
        assert counter.count == 2
        assert results[0] is results[2]
        assert results[1] is results[3]
        assert results[0] is not results[1]


class TestConstraintTable:
    def test_intern_shares_one_instance_per_key(self):
        a, b = _sat_zone(), _sat_zone()
        a.close()
        b.close()
        interned_a = CONSTRAINT_TABLE.intern(a)
        interned_b = CONSTRAINT_TABLE.intern(b)
        assert interned_a is interned_b
        assert interned_a._cid is not None
        assert CONSTRAINT_TABLE.zone_for(interned_a._cid) is interned_a

    def test_copy_never_carries_the_id(self):
        zone = _sat_zone()
        zone.close()
        interned = CONSTRAINT_TABLE.intern(zone)
        assert interned.copy()._cid is None

    def test_full_table_falls_back_to_canonical_key(self):
        table = ConstraintTable(cap=0)
        zone = _sat_zone()
        zone.close()
        returned = table.intern(zone)
        assert returned is zone
        assert returned._cid is None
        assert table.zone_id(zone) == zone.canonical_key()


def _gt(offset, data="x", constraints=None):
    return GeneralizedTuple((Lrp(24, offset),), (data,), constraints)


def _keys(results):
    return [None if gt is None else (gt.canonical_key(), gt.data) for gt in results]


class TestBatchOps:
    """Each batch op must match its per-tuple loop (kernel-off run)."""

    def test_select_batch_matches_ablation(self):
        tuples = [
            _gt(1),
            _gt(1),  # duplicate ids: a template-cache hit when enabled
            _gt(3, constraints=ConstraintSystem.parse("T1 >= 0", 1)),
        ]
        atoms = [Comparison(">=", TemporalTerm(0), TemporalTerm(None, 5))]
        with kernel.configured(False):
            expected = kernel.select_batch(tuples, atoms, kernel.next_token())
        stats = {}
        with kernel.configured(True):
            got = kernel.select_batch(tuples, atoms, kernel.next_token(), stats)
        assert _keys(got) == _keys(expected)
        assert stats["size"] == 3
        assert stats["hits"] == 1

    def test_join_batch_matches_ablation(self):
        pairs = [(_gt(1), _gt(3, "y")), (_gt(1), _gt(3, "z")), (_gt(2), _gt(4, "y"))]
        atoms = [Comparison("=", TemporalTerm(1), TemporalTerm(0, 2))]
        with kernel.configured(False):
            expected = kernel.join_batch(pairs, atoms, kernel.next_token())
        stats = {}
        with kernel.configured(True):
            got = kernel.join_batch(pairs, atoms, kernel.next_token(), stats)
        assert _keys(got) == _keys(expected)
        # The second pair shares both operands' (lvid, cid) ids with the
        # first — data columns differ but the temporal template is shared.
        assert stats["hits"] == 1
        assert got[1].data == ("x", "z")

    def test_join_batch_caches_unsatisfiable_as_none(self):
        # T1 = T1 + 1 can never hold: every pair dies in the zone.
        atoms = [Comparison("=", TemporalTerm(0), TemporalTerm(0, 1))]
        pairs = [(_gt(1), _gt(1, "y"))] * 3
        stats = {}
        with kernel.configured(True):
            got = kernel.join_batch(pairs, atoms, kernel.next_token(), stats)
        assert got == [None, None, None]
        assert stats["hits"] == 2

    def test_extend_batch_matches_ablation(self):
        tuples = [_gt(1), _gt(1), _gt(7)]
        atoms = [Comparison("=", TemporalTerm(1), TemporalTerm(0, 2))]
        with kernel.configured(False):
            expected = kernel.extend_batch(tuples, 1, atoms, kernel.next_token())
        stats = {}
        with kernel.configured(True):
            got = kernel.extend_batch(tuples, 1, atoms, kernel.next_token(), stats)
        assert _keys(got) == _keys(expected)
        assert got[0].temporal_arity == 2
        assert stats["hits"] == 1

    def test_project_batch_matches_ablation(self):
        wide = GeneralizedTuple(
            (Lrp(24, 1), Lrp(24, 3)),
            ("x", "y"),
            ConstraintSystem.parse("T2 = T1 + 2", 2),
        )
        tuples = [wide, wide]
        with kernel.configured(False):
            expected = kernel.project_batch(
                tuples, (0,), (1,), ((0, 2),), kernel.next_token()
            )
        stats = {}
        with kernel.configured(True):
            got = kernel.project_batch(
                tuples, (0,), (1,), ((0, 2),), kernel.next_token(), stats
            )
        assert [_keys(results) for results in got] == [
            _keys(results) for results in expected
        ]
        assert stats["hits"] == 1
        for results in got:
            for gt in results:
                assert gt.data == ("y",)

    def test_configured_restores_the_flag(self):
        saved = kernel.ENABLED
        with kernel.configured(not saved):
            assert kernel.ENABLED is (not saved)
        assert kernel.ENABLED is saved

    def test_cache_stats_shape(self):
        stats = kernel.cache_stats()
        assert set(stats) == {"join", "select", "extend", "project", "cap"}


class TestStoreGenerations:
    """Satellite regression: mutate via with_tuples, then re-query every
    memo/index — the single generation counter must invalidate them."""

    def test_mutate_then_requery_indexes(self):
        base = GeneralizedRelation(1, 1, [_gt(1, "a"), _gt(3, "b")])
        # Prime both indexes on the original view.
        assert set(base.data_index(0)) == {"a", "b"}
        assert len(base.tuples_with_signature(_gt(1, "a").free_signature())) == 1
        grown = base.with_tuples([_gt(5, "a"), _gt(7, "c")])
        # The grown view serves the appended rows...
        index = grown.data_index(0)
        assert set(index) == {"a", "b", "c"}
        assert index["a"] == [0, 2]
        matches = grown.tuples_with_signature(_gt(5, "a").free_signature())
        assert _gt(5, "a") in matches
        # ...while the stale pre-growth view never sees past its prefix.
        old_index = base.data_index(0)
        assert set(old_index) == {"a", "b"}
        assert all(
            position < len(base.tuples)
            for positions in old_index.values()
            for position in positions
        )

    def test_generation_counter_bumps_once_per_growth(self):
        base = GeneralizedRelation(1, 1, [_gt(1)])
        one = base.with_tuples([_gt(3)])
        two = one.with_tuples([_gt(5), _gt(7)])
        assert one.coverage_generation == base.coverage_generation + 1
        assert two.coverage_generation == one.coverage_generation + 1

    def test_growth_drops_stale_negative_coverage_only(self):
        gt = _gt(1, "a")
        base = GeneralizedRelation(1, 1, [gt])
        cache = base.coverage_cache()
        signature = gt.free_signature()
        cache[signature] = {"was-covered": True, "was-uncovered": False}
        other = _gt(3, "b").free_signature()
        cache[other] = {"elsewhere": False}
        # Same lrps + data (same free signature), tighter zone: touches
        # the cached signature without duplicating the row key.
        grown = base.with_tuples(
            [_gt(1, "a", ConstraintSystem.parse("T1 >= 0", 1))]
        )
        after = grown.coverage_cache()
        # The touched signature keeps positives, drops negatives; the
        # untouched signature keeps everything.
        assert after[signature] == {"was-covered": True}
        assert after[other] == {"elsewhere": False}


class TestWireCodec:
    def _tuples(self):
        shared = ConstraintSystem.parse("T1 >= 0 & T2 = T1 + 2", 2)
        other = ConstraintSystem.parse("T2 >= T1", 2)
        return [
            GeneralizedTuple((Lrp(24, 1), Lrp(24, 3)), ("a",), shared),
            GeneralizedTuple((Lrp(24, 5), Lrp(24, 7)), ("b",), shared),
            GeneralizedTuple((Lrp(12, 0), Lrp(12, 2)), ("c",)),  # trivial
            GeneralizedTuple((Lrp(24, 1), Lrp(24, 3)), ("d",), other),
        ]

    def test_tuple_batch_round_trip(self):
        tuples = self._tuples()
        payload = encode_tuple_batch(tuples)
        # Two distinct non-trivial zones, serialized once each.
        assert len(payload["constraints"]) == 2
        assert [row[2] for row in payload["rows"]] == [0, 0, -1, 1]
        decoded = decode_tuple_batch(payload)
        assert _keys(decoded) == _keys(tuples)
        # Rows that shared a dictionary slot share one decoded system.
        assert decoded[0].constraints is decoded[1].constraints
        assert decoded[2].constraints.is_trivial()

    def test_empty_batch_round_trip(self):
        payload = encode_tuple_batch([])
        assert payload == {"constraints": [], "rows": []}
        assert decode_tuple_batch(payload) == []

    def test_relation_batch_round_trip(self):
        relation = GeneralizedRelation(2, 1, self._tuples())
        decoded = decode_relation_batch(encode_relation_batch(relation))
        assert decoded.temporal_arity == relation.temporal_arity
        assert decoded.data_arity == relation.data_arity
        assert _keys(decoded.tuples) == _keys(relation.tuples)
        assert decoded.equivalent(relation)

    def test_batch_is_json_serializable(self):
        import json

        payload = encode_relation_batch(GeneralizedRelation(2, 1, self._tuples()))
        assert decode_relation_batch(json.loads(json.dumps(payload))).equivalent(
            GeneralizedRelation(2, 1, self._tuples())
        )


class TestWireCodecPastInternCap:
    """Tuples whose zones overflowed the ConstraintTable cap carry no
    integer id — ``constraint_id`` falls back to the structural
    canonical key — and must still cross the shard wire codec
    bit-identically (the shard pool ships whatever the engine derives,
    interned or not)."""

    def _overflow_tuples(self):
        # Clamp the shared table at its current size: every zone below
        # is distinct and new, so none of them gets interned.
        tuples = []
        for k in range(5):
            system = ConstraintSystem.parse(
                "T2 = T1 + %d & T1 >= %d" % (7919 + k, 104729 + k), 2
            )
            tuples.append(
                GeneralizedTuple((Lrp(24, 1), Lrp(24, 3)), ("v%d" % k,), system)
            )
        # Two rows sharing one overflowed zone, to exercise the
        # structural-key dictionary slot path.
        shared = ConstraintSystem.parse("T2 = T1 + 7930 & T1 >= 104740", 2)
        tuples.append(GeneralizedTuple((Lrp(24, 5), Lrp(24, 7)), ("w0",), shared))
        tuples.append(GeneralizedTuple((Lrp(24, 9), Lrp(24, 11)), ("w1",), shared))
        return tuples

    def test_overflow_round_trip_bit_identical(self):
        import json

        saved_cap = CONSTRAINT_TABLE.cap
        CONSTRAINT_TABLE.cap = len(CONSTRAINT_TABLE)
        try:
            tuples = self._overflow_tuples()
            # The clamp really bit: none of these zones was interned.
            for gt in tuples:
                assert not isinstance(
                    gt.constraints.constraint_id(), int
                ), "zone unexpectedly interned despite the cap clamp"
            payload = encode_tuple_batch(tuples)
            # The shared overflowed zone still dedups to one dict slot.
            assert len(payload["constraints"]) == 6
            assert payload["rows"][5][2] == payload["rows"][6][2]
            wire = json.dumps(payload, sort_keys=True)
            decoded = decode_tuple_batch(json.loads(wire))
            assert _keys(decoded) == _keys(tuples)
            # Bit-identical: re-encoding the decoded batch reproduces
            # the original wire bytes exactly.
            assert json.dumps(encode_tuple_batch(decoded), sort_keys=True) == wire
        finally:
            CONSTRAINT_TABLE.cap = saved_cap

    def test_mixed_interned_and_overflowed_batch(self):
        interned = ConstraintSystem.parse("T1 >= 0 & T2 = T1 + 2", 2)
        saved_cap = CONSTRAINT_TABLE.cap
        CONSTRAINT_TABLE.cap = len(CONSTRAINT_TABLE)
        try:
            tuples = [
                GeneralizedTuple((Lrp(24, 1), Lrp(24, 3)), ("a",), interned)
            ] + self._overflow_tuples()
            decoded = decode_tuple_batch(encode_tuple_batch(tuples))
            assert _keys(decoded) == _keys(tuples)
        finally:
            CONSTRAINT_TABLE.cap = saved_cap


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
