"""Unit tests for linear repeating points (repro.lrp.point)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lrp import Lrp

lrps = st.builds(Lrp, st.integers(1, 60), st.integers(-200, 200))


class TestConstruction:
    def test_offset_normalized(self):
        assert Lrp(5, -2) == Lrp(5, 3)
        assert Lrp(5, 8).offset == 3

    def test_rejects_zero_period(self):
        with pytest.raises(ValueError):
            Lrp(0, 3)

    def test_rejects_negative_period(self):
        with pytest.raises(ValueError):
            Lrp(-5, 3)

    def test_paper_example_5n3(self):
        # "the lrp 5m+3 denotes {…, -7, -2, 3, 8, 13, …}" (Section 2.1)
        lrp = Lrp(5, 3)
        for t in (-7, -2, 3, 8, 13):
            assert t in lrp
        for t in (-6, 0, 5, 12):
            assert t not in lrp

    def test_parse(self):
        assert Lrp.parse("168n+8") == Lrp(168, 8)
        assert Lrp.parse("5n") == Lrp(5, 0)
        assert Lrp.parse("n+3") == Lrp(1, 0)  # period 1 absorbs every offset
        assert Lrp.parse("n") == Lrp(1, 0)

    def test_parse_rejects_plain_integer(self):
        with pytest.raises(ValueError):
            Lrp.parse("42")

    def test_str_roundtrip(self):
        for lrp in (Lrp(168, 8), Lrp(5, 0), Lrp(1, 0)):
            assert Lrp.parse(str(lrp)) == lrp


class TestMembershipAndSubset:
    @given(lrps, st.integers(-500, 500))
    def test_membership_definition(self, lrp, t):
        assert (t in lrp) == ((t - lrp.offset) % lrp.period == 0)

    def test_subset(self):
        assert Lrp(10, 3).is_subset(Lrp(5, 3))
        assert not Lrp(5, 3).is_subset(Lrp(10, 3))
        assert not Lrp(10, 4).is_subset(Lrp(5, 3))

    @given(lrps, lrps)
    def test_subset_agrees_with_enumeration(self, a, b):
        window = range(-120, 120)
        enumerated = all((t not in a) or (t in b) for t in window)
        if a.is_subset(b):
            assert enumerated
        else:
            # Some point of a outside b must exist; check a full period.
            assert any(t in a and t not in b for t in range(a.period * b.period))


class TestIntersection:
    def test_textbook(self):
        assert Lrp(4, 1).intersect(Lrp(6, 3)) == Lrp(12, 9)

    def test_disjoint(self):
        assert Lrp(4, 0).intersect(Lrp(4, 1)) is None

    @given(lrps, lrps)
    def test_agrees_with_enumeration(self, a, b):
        meet = a.intersect(b)
        period = a.period * b.period
        brute = [t for t in range(period) if t in a and t in b]
        if meet is None:
            assert brute == []
            assert not a.intersects(b)
        else:
            assert a.intersects(b)
            assert brute == [t for t in range(period) if t in meet]

    @given(lrps)
    def test_self_intersection(self, lrp):
        assert lrp.intersect(lrp) == lrp


class TestTransformations:
    def test_shift(self):
        assert Lrp(5, 3).shift(4) == Lrp(5, 2)
        assert Lrp(5, 3).shift(-4) == Lrp(5, 4)

    @given(lrps, st.integers(-100, 100), st.integers(-100, 100))
    def test_shift_membership(self, lrp, c, t):
        assert (t in lrp.shift(c)) == ((t - c) in lrp)

    def test_scale_period(self):
        assert Lrp(2, 1).scale_period(2) == [Lrp(4, 1), Lrp(4, 3)]

    @given(lrps, st.integers(1, 6))
    def test_scale_period_partitions(self, lrp, factor):
        parts = lrp.scale_period(factor)
        window = range(0, lrp.period * factor * 2)
        for t in window:
            count = sum(t in p for p in parts)
            assert count <= 1  # parts are disjoint
            assert (t in lrp) == (count == 1)

    def test_residues_modulo(self):
        assert Lrp(2, 0).residues_modulo(6) == [0, 2, 4]

    def test_residues_modulo_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            Lrp(4, 0).residues_modulo(6)


class TestEnumeration:
    def test_enumerate(self):
        assert list(Lrp(5, 3).enumerate(-5, 15)) == [-2, 3, 8, 13]

    def test_enumerate_empty_window(self):
        assert list(Lrp(5, 3).enumerate(4, 4)) == []

    @given(lrps, st.integers(-100, 100), st.integers(0, 100))
    def test_enumerate_matches_membership(self, lrp, low, width):
        high = low + width
        assert list(lrp.enumerate(low, high)) == [t for t in range(low, high) if t in lrp]

    @given(lrps, st.integers(-300, 300))
    def test_smallest_at_least(self, lrp, bound):
        value = lrp.smallest_at_least(bound)
        assert value >= bound and value in lrp
        assert all(t not in lrp for t in range(bound, value))

    @given(lrps, st.integers(-300, 300))
    def test_largest_at_most(self, lrp, bound):
        value = lrp.largest_at_most(bound)
        assert value <= bound and value in lrp
        assert all(t not in lrp for t in range(value + 1, bound + 1))
