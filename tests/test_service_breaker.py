"""Circuit breaker: closed → open → half-open → closed/open
transitions, driven by an injectable clock so no test sleeps."""

import pytest

from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.util.errors import CircuitOpenError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0, clock=clock)


class TestTransitions:
    def test_starts_closed_and_admits(self, breaker):
        assert breaker.state("p") == CLOSED
        breaker.check("p")  # no raise

    def test_opens_after_threshold_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure("p")
        assert breaker.state("p") == CLOSED
        breaker.record_failure("p")
        assert breaker.state("p") == OPEN
        with pytest.raises(CircuitOpenError) as info:
            breaker.check("p")
        assert info.value.program_key == "p"

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure("p")
        breaker.record_failure("p")
        breaker.record_success("p")
        breaker.record_failure("p")
        breaker.record_failure("p")
        assert breaker.state("p") == CLOSED

    def test_keys_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure("p")
        breaker.check("q")  # other program unaffected
        assert breaker.state("q") == CLOSED

    def test_half_open_after_cooldown_admits_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("p")
        clock.advance(9.9)
        with pytest.raises(CircuitOpenError):
            breaker.check("p")
        clock.advance(0.2)
        breaker.check("p")  # the probe
        assert breaker.state("p") == HALF_OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check("p")  # concurrent admission during the probe

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("p")
        clock.advance(10.1)
        breaker.check("p")
        breaker.record_success("p")
        assert breaker.state("p") == CLOSED
        breaker.check("p")  # normal admission again

    def test_probe_failure_reopens_and_restarts_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("p")
        clock.advance(10.1)
        breaker.check("p")
        breaker.record_failure("p")
        assert breaker.state("p") == OPEN
        clock.advance(9.9)
        with pytest.raises(CircuitOpenError):
            breaker.check("p")
        clock.advance(0.2)
        breaker.check("p")  # next probe admitted

    def test_snapshot_reports_unhealthy_keys_only(self, breaker):
        breaker.record_failure("p")
        for _ in range(3):
            breaker.record_failure("q")
        breaker.record_success("r")
        snapshot = breaker.snapshot()
        assert snapshot["p"] == {"state": CLOSED, "failures": 1}
        assert snapshot["q"]["state"] == OPEN
        assert "r" not in snapshot

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestProbeToken:
    """The half-open probe slot is held by a token so the same
    admission can be re-checked along the service pipeline (submit →
    worker pickup) without rejecting itself."""

    def trip(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("p")
        clock.advance(10.1)

    def test_probe_holder_recheck_is_idempotent(self, breaker, clock):
        self.trip(breaker, clock)
        token = object()
        breaker.check("p", token=token)  # claims the probe slot
        breaker.check("p", token=token)  # same admission, checked again
        with pytest.raises(CircuitOpenError):
            breaker.check("p", token=object())  # a different admission
        breaker.record_success("p")
        assert breaker.state("p") == CLOSED

    def test_release_probe_frees_the_slot(self, breaker, clock):
        self.trip(breaker, clock)
        token = object()
        breaker.check("p", token=token)
        breaker.release_probe("p", token)
        breaker.check("p", token=object())  # next probe admitted

    def test_release_probe_ignores_non_holders(self, breaker, clock):
        self.trip(breaker, clock)
        token = object()
        breaker.check("p", token=token)
        breaker.release_probe("p", object())  # not the holder: no-op
        breaker.release_probe("q", token)  # unseen key: no-op
        with pytest.raises(CircuitOpenError):
            breaker.check("p", token=object())
