"""Tests for stratified negation in the deductive language.

The paper (Section 3.2) notes stratified negation lifts the deductive
query expressiveness to the full ω-regular class; the engine supports
``not p(…)`` body atoms evaluated stratum by stratum against exact
complements of generalized relations.
"""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.core.ast import NegatedAtom
from repro.core.stratify import dependency_edges, stratify
from repro.gdb import parse_database
from repro.util.errors import ParseError, SchemaError

EDB = """
relation sched[1; 0] { (10n) where T1 >= 0; }
relation holiday[1; 0] { (30n) where T1 >= 0; }
"""


def run(program_text, edb_text=EDB, **kwargs):
    program = parse_program(program_text)
    edb = parse_database(edb_text)
    return DeductiveEngine(program, edb, **kwargs).run()


class TestParsing:
    def test_not_atom(self):
        program = parse_program("p(t) <- q(t), not r(t).")
        clause = program.clauses[0]
        assert len(clause.negated_atoms()) == 1
        assert isinstance(clause.negated_atoms()[0], NegatedAtom)
        assert clause.negated_atoms()[0].atom.predicate == "r"

    def test_not_needs_atom(self):
        with pytest.raises(ParseError):
            parse_program("p(t) <- not t < 5.")

    def test_str_roundtrip(self):
        program = parse_program("p(t) <- q(t; X), not r(t + 2; X).")
        again = parse_program(str(program))
        assert str(again) == str(program)

    def test_negated_data_var_must_be_bound(self):
        with pytest.raises(SchemaError):
            parse_program("p(t) <- q(t), not r(t; X).")

    def test_negated_temporal_var_may_be_free(self):
        program = parse_program("p(t) <- not q(t), t >= 0.")
        assert len(program) == 1


class TestStratification:
    def test_single_stratum_without_negation(self):
        program = parse_program("p(t) <- q(t). p(t + 1) <- p(t).")
        strata, clause_strata = stratify(program)
        assert strata == {"p": 0}
        assert len(clause_strata) == 1

    def test_two_strata(self):
        program = parse_program(
            """
            base(t) <- q(t).
            derived(t) <- not base(t).
            """
        )
        strata, clause_strata = stratify(program)
        assert strata["base"] == 0
        assert strata["derived"] == 1
        assert len(clause_strata) == 2

    def test_chain_of_negations(self):
        program = parse_program(
            """
            a(t) <- q(t).
            b(t) <- not a(t).
            c(t) <- not b(t).
            """
        )
        strata, _ = stratify(program)
        assert (strata["a"], strata["b"], strata["c"]) == (0, 1, 2)

    def test_recursion_through_negation_rejected(self):
        program = parse_program("p(t) <- not p(t).")
        with pytest.raises(SchemaError):
            stratify(program)

    def test_mutual_recursion_through_negation_rejected(self):
        program = parse_program(
            """
            p(t) <- not q(t).
            q(t) <- p(t).
            """
        )
        with pytest.raises(SchemaError):
            stratify(program)

    def test_positive_recursion_same_stratum(self):
        program = parse_program(
            """
            a(t) <- q(t).
            a(t + 1) <- a(t).
            b(t) <- not a(t), q(t).
            """
        )
        strata, _ = stratify(program)
        assert strata == {"a": 0, "b": 1}

    def test_dependency_edges(self):
        program = parse_program("p(t) <- q0(t), not r(t). r(t) <- q0(t).")
        edges = dependency_edges(program)
        assert ("p", "r", True) in edges
        assert all(not negative for (h, b, negative) in edges if b == "q0")


class TestEvaluation:
    def test_edb_negation(self):
        model = run("runs(t) <- sched(t), not holiday(t).")
        assert model.extension("runs", 0, 65) == {(10,), (20,), (40,), (50,)}
        assert model.stats.constraint_safe

    def test_idb_negation_after_recursion(self):
        model = run(
            """
            busy(t) <- sched(t).
            busy(t + 5) <- busy(t).
            free(t) <- not busy(t), t >= 0, t < 12.
            """
        )
        assert model.stats.strata == 2
        assert model.extension("free", 0, 12) == {
            (t,) for t in range(12) if t % 5 != 0
        }

    def test_negation_with_shifted_argument(self):
        # Times t in the schedule with no holiday the day after.
        model = run("calm(t) <- sched(t), not holiday(t + 30).")
        # holiday at 0,30,60,...; t+30 is a holiday iff t multiple of 30
        # (for t >= -30).
        assert model.extension("calm", 0, 65) == {
            (10,), (20,), (40,), (50,)
        }

    def test_negation_infinite_complement(self):
        # The complement is an infinite set, finitely represented.
        model = run("quiet(t) <- not sched(t).")
        quiet = model.relation("quiet")
        assert quiet.contains_point((-5,))
        assert quiet.contains_point((7,))
        assert not quiet.contains_point((20,))
        assert quiet.contains_point((1000001,))

    def test_negation_with_data(self):
        edb = """
        relation works[1; 1] { (7n; "ann") where T1 >= 0; (7n+3; "bob") where T1 >= 0; }
        """
        model = run(
            "off(t; W) <- works(u; W), not works(t; W), t >= 0, t < 7.",
            edb_text=edb,
        )
        # For each worker, the days 0..6 they do not work.
        expected = {(t, "ann") for t in range(1, 7)} | {
            (t, "bob") for t in range(7) if t != 3
        }
        assert model.extension("off", 0, 7) == expected

    def test_double_negation_identity(self):
        model = run(
            """
            p(t) <- sched(t).
            notp(t) <- not p(t).
            backp(t) <- not notp(t).
            """
        )
        assert model.stats.strata == 3
        back = model.relation("backp")
        p = model.relation("p")
        assert back.equivalent(p)

    def test_negation_strategies_agree(self):
        text = """
        busy(t) <- sched(t).
        busy(t + 5) <- busy(t).
        free(t) <- not busy(t), t >= 0, t < 12.
        """
        naive = run(text, strategy="naive")
        seminaive = run(text, strategy="semi-naive")
        assert naive.relation("free").equivalent(seminaive.relation("free"))

    def test_window_difference_query(self):
        # "ω-regular style": scheduled times not followed by another
        # scheduled time within 15 — needs negation over a shifted
        # window, beyond the positive language.
        edb = """
        relation ping[1; 0] { (20n) where T1 >= 0; (20n+8) where T1 >= 0; }
        """
        model = run(
            """
            followed(t) <- ping(t), ping(u), t < u, u <= t + 10.
            lonely(t) <- ping(t), not followed(t).
            """,
            edb_text=edb,
        )
        # ping at 0,8,20,28,…: 0 is followed (8, gap 8); 8 is lonely
        # (next ping at 20, gap 12 > 10).
        assert model.extension("lonely", 0, 50) == {(8,), (28,), (48,)}

    def test_missing_complement_is_internal_error(self):
        from repro.core.evaluation import ProgramEvaluator

        program = parse_program("p(t) <- not sched(t).")
        edb = parse_database(EDB)
        evaluator = ProgramEvaluator(program, edb)
        clause_eval = evaluator.evaluators[0]
        with pytest.raises(SchemaError):
            clause_eval.evaluate(evaluator.initial_environment())

    def test_ground_check_stratified(self):
        # Cross-validate against hand computation on a window.
        model = run(
            """
            busy(t) <- sched(t).
            busy(t + 4) <- busy(t).
            free(t) <- not busy(t), t >= 0, t < 40.
            """
        )
        busy = {t for t in range(0, 200) if t % 2 == 0}
        # sched = 10n (t>=0) closed under +4: {10a+4b} = all even >= 0
        # eventually; check against the engine's own busy relation.
        engine_busy = {t for (t,) in model.extension("busy", 0, 40)}
        expected_free = {(t,) for t in range(40) if t not in engine_busy}
        assert model.extension("free", 0, 40) == expected_free
