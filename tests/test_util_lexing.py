"""Tests for the shared tokenizer and error machinery."""

import pytest

from repro.util import Lexer, ParseError, ReproError, TokenKind
from repro.util.errors import EvaluationError, GiveUpError, SchemaError


class TestTokenKinds:
    def test_identifiers_and_numbers(self):
        lx = Lexer("abc _x9 42")
        assert lx.next().kind is TokenKind.IDENT
        assert lx.next().value == "_x9"
        token = lx.next()
        assert token.kind is TokenKind.NUMBER and token.value == "42"
        assert lx.at_end()

    def test_strings(self):
        lx = Lexer('"hello world" "esc\\"aped"')
        assert lx.next().value == "hello world"
        assert lx.next().value == 'esc"aped'

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            Lexer('"oops').next()

    def test_arrow_variants(self):
        lx = Lexer("<- :- <= < >= > = !=")
        kinds = [lx.next().kind for _ in range(8)]
        assert kinds == [
            TokenKind.ARROW,
            TokenKind.ARROW,
            TokenKind.LE,
            TokenKind.LT,
            TokenKind.GE,
            TokenKind.GT,
            TokenKind.EQ,
            TokenKind.NE,
        ]

    def test_punctuation(self):
        lx = Lexer("( ) [ ] { } , ; . + - * ^ | & :")
        kinds = [lx.next().kind for _ in range(16)]
        assert kinds == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.COMMA,
            TokenKind.SEMICOLON,
            TokenKind.PERIOD,
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.CARET,
            TokenKind.PIPE,
            TokenKind.AMP,
            TokenKind.COLON,
        ]

    def test_bang_alone_is_error(self):
        with pytest.raises(ParseError):
            Lexer("!x").next()

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            Lexer("@").next()


class TestComments:
    def test_percent_comment(self):
        lx = Lexer("a % this is ignored\nb")
        assert lx.next().value == "a"
        assert lx.next().value == "b"

    def test_hash_comment(self):
        lx = Lexer("# whole line\nx")
        assert lx.next().value == "x"

    def test_comment_to_eof(self):
        lx = Lexer("x % trailing")
        assert lx.next().value == "x"
        assert lx.at_end()


class TestPositions:
    def test_line_and_column(self):
        lx = Lexer("a\n  b")
        a = lx.next()
        b = lx.next()
        assert (a.line, a.column) == (1, 1)
        assert (b.line, b.column) == (2, 3)

    def test_error_carries_position(self):
        lx = Lexer("a\n  @")
        lx.next()
        with pytest.raises(ParseError) as excinfo:
            lx.next()
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3
        assert "line 2, column 3" in str(excinfo.value)


class TestHelpers:
    def test_peek_is_idempotent(self):
        lx = Lexer("x y")
        assert lx.peek() is lx.peek()
        assert lx.next().value == "x"

    def test_expect_success_and_failure(self):
        lx = Lexer("( x")
        lx.expect(TokenKind.LPAREN)
        with pytest.raises(ParseError):
            lx.expect(TokenKind.NUMBER)

    def test_expect_keyword(self):
        lx = Lexer("where T")
        lx.expect_keyword("where")
        with pytest.raises(ParseError):
            lx.expect_keyword("where")

    def test_accept(self):
        lx = Lexer(", x")
        assert lx.accept(TokenKind.COMMA) is not None
        assert lx.accept(TokenKind.COMMA) is None
        assert lx.accept_keyword("x") is not None

    def test_eof_token(self):
        lx = Lexer("")
        assert lx.peek().kind is TokenKind.EOF
        assert lx.at_end()

    def test_error_helper(self):
        lx = Lexer("x")
        with pytest.raises(ParseError):
            lx.error("boom")

    def test_token_str(self):
        lx = Lexer('name 12 "s" <')
        assert "identifier" in str(lx.next())
        assert "number" in str(lx.next())
        assert "string" in str(lx.next())
        assert "<" in str(lx.next())


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (ParseError, SchemaError, EvaluationError, GiveUpError):
            assert issubclass(cls, ReproError)

    def test_giveup_is_evaluation_error(self):
        assert issubclass(GiveUpError, EvaluationError)

    def test_giveup_payload(self):
        error = GiveUpError("stopped", partial_model="model", stats="stats")
        assert error.partial_model == "model"
        assert error.stats == "stats"

    def test_parse_error_without_position(self):
        error = ParseError("plain message")
        assert error.line is None
        assert "plain message" in str(error)
