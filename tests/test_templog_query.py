"""Tests for the Templog goal/query layer."""

import pytest

from repro.lrp import EventuallyPeriodicSet
from repro.templog import (
    evaluate_goal,
    parse_goal,
    parse_templog,
    templog_minimal_model,
    yes_no,
)
from repro.templog.query import holds_at
from repro.util.errors import EvaluationError

MODEL_PROGRAM = """
next^5 go.
always (next^40 go <- go).
next^7 alarm.
"""


def model():
    return templog_minimal_model(parse_templog(MODEL_PROGRAM))


class TestGoals:
    def test_atom_goal(self):
        goal = parse_goal("go")
        answers = evaluate_goal(model(), goal)
        assert answers == EventuallyPeriodicSet(
            threshold=5, period=40, residues=[5]
        )

    def test_next_shifts_back(self):
        # ○^5 go holds at t iff go holds at t+5: at 0, 40, 80, …
        goal = parse_goal("next^5 go")
        answers = evaluate_goal(model(), goal)
        assert 0 in answers and 40 in answers
        assert 5 not in answers

    def test_conjunction(self):
        goal = parse_goal("go, next^2 alarm")
        answers = evaluate_goal(model(), goal)
        assert answers == EventuallyPeriodicSet.from_finite([5])

    def test_diamond_goal(self):
        goal = parse_goal("<>(alarm)")
        answers = evaluate_goal(model(), goal)
        # alarm only at 7: ◇alarm on [0, 7].
        assert answers == EventuallyPeriodicSet.from_finite(range(8))

    def test_diamond_of_conjunction(self):
        goal = parse_goal("<>(go, next^2 alarm)")
        answers = evaluate_goal(model(), goal)
        assert answers == EventuallyPeriodicSet.from_finite(range(6))

    def test_nested_diamond(self):
        goal = parse_goal("<>(<>(alarm))")
        assert evaluate_goal(model(), goal) == EventuallyPeriodicSet.from_finite(
            range(8)
        )

    def test_shifted_diamond(self):
        # next^6 <>(alarm): ◇alarm at t+6, so t <= 1.
        goal = parse_goal("next^6 <>(alarm)")
        answers = evaluate_goal(model(), goal)
        assert answers == EventuallyPeriodicSet.from_finite(range(2))

    def test_yes_no(self):
        assert yes_no(model(), parse_goal("<>(go)"))
        assert not yes_no(model(), parse_goal("go"))
        assert holds_at(model(), parse_goal("go"), 45)

    def test_empty_predicate(self):
        goal = parse_goal("nothing")
        assert evaluate_goal(model(), goal).is_empty()

    def test_variables_rejected(self):
        goal = parse_goal("go_to(X)")
        with pytest.raises(EvaluationError):
            evaluate_goal(model(), goal)

    def test_infinite_diamond_is_all(self):
        goal = parse_goal("<>(go)")
        assert evaluate_goal(model(), goal).is_all()


class TestModelAsDatabase:
    def test_round_trip_through_text(self):
        from repro.core import DeductiveEngine, parse_program
        from repro.gdb import parse_database

        edb = parse_database(
            """
            relation course[2; 1] {
              (168n+8, 168n+10; "database") where T2 = T1 + 2;
            }
            """
        )
        program = parse_program(
            """
            problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X).
            problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
            """
        )
        model = DeductiveEngine(program, edb).run()
        saved = model.as_database()
        reloaded = parse_database(str(saved))
        assert reloaded.relation("problems").equivalent(
            model.relation("problems")
        )

    def test_queryable_without_rerun(self):
        from repro.core import DeductiveEngine, parse_program
        from repro.fo import evaluate_query
        from repro.gdb import parse_database

        edb = parse_database("relation tick[1; 0] { (12n) where T1 >= 0; }")
        program = parse_program("beat(t + 6) <- tick(t).")
        db = DeductiveEngine(program, edb).run().as_database()
        answers = evaluate_query(db, "beat(t) and t >= 0 and t < 40")
        assert answers.extension(0, 60) == {(6,), (18,), (30,)}
