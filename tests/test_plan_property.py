"""Randomized equivalence of compiled plans and the reference path.

Hypothesis generates small deductive programs — recursion, data
variables and constants, comparison constraints, negation of EDB
predicates — and checks that evaluating through the compiled clause
plans (:mod:`repro.plan`) agrees with the paper-literal
product-then-select oracle (:mod:`repro.plan.reference`):

* round-by-round: one naive T_GP application derives equivalent
  relations per predicate;
* end-to-end: the engine's fixpoint models are ``equivalent()`` under
  both backends, for both strategies;
* columnar vs reference: the same programs through the columnar batch
  kernel (:mod:`repro.gdb.kernel`) are bit-identical to the per-tuple
  ablation and equivalent to the reference oracle.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import DeductiveEngine, parse_program
from repro.core.evaluation import ProgramEvaluator
from repro.gdb import kernel, parse_database
from repro.gdb.relation import GeneralizedRelation

EDB_TEXT = """
relation a[1; 1] { (6n; "x") where T1 >= 0; (4n+1; "y") where T1 >= 0; }
relation b[1; 1] { (3n+2; "x") where T1 >= 0; }
"""


def edb():
    return parse_database(EDB_TEXT)


@st.composite
def program_text(draw):
    """A small stratified program over the fixed EDB.

    Bodies draw positive atoms over ``a``/``b``/``p`` (so every body
    predicate has a schema), negation only over EDB predicates (so
    stratification always succeeds), and head data terms are constants
    or variables bound by a positive atom."""
    clauses = []
    n_clauses = draw(st.integers(1, 3))
    for index in range(n_clauses):
        head_pred = "p" if index == 0 else draw(st.sampled_from(["p", "q"]))
        n_atoms = draw(st.integers(1, 2))
        body = []
        positive_temporal = []
        positive_data = []
        for _ in range(n_atoms):
            pred = draw(st.sampled_from(["a", "b", "p"]))
            var = draw(st.sampled_from(["t", "u"]))
            offset = draw(st.integers(-2, 2))
            data = draw(st.sampled_from(['"x"', '"y"', "X", "Y"]))
            body.append("%s(%s; %s)" % (pred, _term(var, offset), data))
            positive_temporal.append(var)
            if data in ("X", "Y"):
                positive_data.append(data)
        if draw(st.booleans()):
            pred = draw(st.sampled_from(["a", "b"]))
            var = draw(st.sampled_from(positive_temporal))
            data = draw(st.sampled_from(['"x"', '"y"'] + positive_data))
            body.append(
                "not %s(%s; %s)"
                % (pred, _term(var, draw(st.integers(-1, 1))), data)
            )
        if draw(st.booleans()):
            left = draw(st.sampled_from(positive_temporal))
            right = draw(st.sampled_from(positive_temporal + ["0", "12"]))
            op = draw(st.sampled_from(["<", "<=", ">=", "="]))
            body.append("%s %s %s" % (left, op, _maybe_offset(draw, right)))
        head_var = draw(st.sampled_from(positive_temporal))
        head_data = draw(st.sampled_from(['"x"', '"y"'] + positive_data))
        head = "%s(%s; %s)" % (
            head_pred,
            _term(head_var, draw(st.integers(0, 3))),
            head_data,
        )
        clauses.append("%s <- %s." % (head, ", ".join(body)))
    return "\n".join(clauses)


def _term(var, offset):
    if offset == 0:
        return var
    return "%s %s %d" % (var, "+" if offset > 0 else "-", abs(offset))


def _maybe_offset(draw, right):
    if right in ("0", "12"):
        return right
    return _term(right, draw(st.integers(-2, 2)))


def _relations_equivalent(derived_a, derived_b, schemas):
    assert set(derived_a) == set(derived_b)
    for name in derived_a:
        relation_a = GeneralizedRelation(*schemas[name], tuples=derived_a[name])
        relation_b = GeneralizedRelation(*schemas[name], tuples=derived_b[name])
        assert relation_a.equivalent(relation_b), name


@settings(max_examples=40, deadline=None)
@given(program_text())
def test_naive_round_matches_reference(text):
    program = parse_program(text)
    database = edb()
    compiled = ProgramEvaluator(program, database, evaluation="compiled")
    reference = ProgramEvaluator(program, database, evaluation="reference")
    env = compiled.initial_environment()
    complements = compiled.complements_for(compiled.evaluators, env)
    derived_c = compiled.naive_round(env, complements=complements)
    derived_r = reference.naive_round(env, complements=complements)
    _relations_equivalent(derived_c, derived_r, compiled.schemas)
    # A second round from the grown environment exercises joins whose
    # intensional inputs are non-empty.
    for name, tuples in derived_c.items():
        env[name] = env[name].with_tuples(tuples)
    complements = compiled.complements_for(compiled.evaluators, env)
    _relations_equivalent(
        compiled.naive_round(env, complements=complements),
        reference.naive_round(env, complements=complements),
        compiled.schemas,
    )


@settings(max_examples=25, deadline=None)
@given(program_text(), st.sampled_from(["naive", "semi-naive"]))
def test_fixpoint_matches_reference(text, strategy):
    program = parse_program(text)

    def run(evaluation):
        return DeductiveEngine(
            program,
            edb(),
            strategy=strategy,
            evaluation=evaluation,
            max_rounds=60,
            patience=4,
            on_give_up="partial",
        ).run()

    model_c = run("compiled")
    model_r = run("reference")
    # A partial (gave-up) model depends on derivation order; only
    # completed fixpoints are canonical.
    assume(not model_c.stats.gave_up and not model_r.stats.gave_up)
    assert model_c.predicates() == model_r.predicates()
    for name in model_c.predicates():
        assert model_c.relation(name).equivalent(model_r.relation(name)), name


@settings(max_examples=15, deadline=None)
@given(program_text(), st.sampled_from(["naive", "semi-naive"]))
def test_columnar_kernel_matches_reference(text, strategy):
    """Columnar vs reference: the batch kernel must not change a single
    bit of the compiled model (same rendering, same per-round stats as
    its per-tuple ablation) and must stay equivalent to the oracle."""
    program = parse_program(text)

    def run(evaluation, enabled):
        with kernel.configured(enabled):
            return DeductiveEngine(
                program,
                edb(),
                strategy=strategy,
                evaluation=evaluation,
                max_rounds=60,
                patience=4,
                on_give_up="partial",
            ).run()

    columnar = run("compiled", True)
    ablated = run("compiled", False)
    oracle = run("reference", False)
    assume(not columnar.stats.gave_up and not oracle.stats.gave_up)
    assert str(columnar) == str(ablated)
    assert (
        columnar.stats.new_tuples_per_round == ablated.stats.new_tuples_per_round
    )
    assert columnar.stats.rounds == ablated.stats.rounds
    assert columnar.predicates() == oracle.predicates()
    for name in columnar.predicates():
        assert columnar.relation(name).equivalent(oracle.relation(name)), name
