"""Failure-injection tests: every front end must fail loudly and
precisely, never silently."""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.datalog1s import minimal_model, parse_datalog1s
from repro.datalog1s.ast import Datalog1SProgram
from repro.fo import evaluate_query, parse_formula
from repro.gdb import parse_database
from repro.util.errors import (
    EvaluationError,
    ParseError,
    SchemaError,
)


class TestFoErrors:
    def test_unknown_relation(self):
        db = parse_database("relation p[1; 0] { (2n); }")
        with pytest.raises(SchemaError):
            evaluate_query(db, "q(t)")

    def test_arity_mismatch(self):
        db = parse_database("relation p[1; 0] { (2n); }")
        with pytest.raises(EvaluationError):
            evaluate_query(db, "p(t, u)")

    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse_formula("p(t) and")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_formula("exists t (p(t)")

    def test_missing_comparison_operand(self):
        with pytest.raises(ParseError):
            parse_formula("t <")


class TestEngineErrors:
    def test_missing_edb_relation(self):
        program = parse_program("p(t) <- nothere(t).")
        edb = parse_database("relation q[1; 0] {}")
        with pytest.raises(SchemaError):
            DeductiveEngine(program, edb)

    def test_edb_arity_conflict(self):
        program = parse_program("p(t) <- q(t, u).")
        edb = parse_database("relation q[1; 0] {}")
        with pytest.raises(SchemaError):
            DeductiveEngine(program, edb)

    def test_unstratifiable_program(self):
        program = parse_program("p(t) <- not p(t).")
        edb = parse_database("relation q[1; 0] {}")
        with pytest.raises(SchemaError):
            DeductiveEngine(program, edb)


class TestDatalog1SErrors:
    def test_horizon_exhaustion(self):
        # A legitimate program whose period exceeds a tiny horizon cap.
        program = parse_datalog1s("p(0). p(t + 7) <- p(t). q(0). q(t + 11) <- q(t). r(t) <- p(t), q(t).")
        with pytest.raises(EvaluationError):
            minimal_model(program, max_horizon=10)

    def test_negated_atom_all_checks_apply(self):
        with pytest.raises(SchemaError):
            parse_datalog1s("p(t) <- q(t), not r(u).")

    def test_program_wrapper_validates(self):
        from repro.core.parser import parse_program as core_parse

        core = core_parse("p(t, u) <- q(t).")
        with pytest.raises(SchemaError):
            Datalog1SProgram(core)


class TestGdbErrors:
    def test_relation_schema_mismatch_ops(self):
        a = parse_database("relation p[1; 0] { (2n); }").relation("p")
        b = parse_database("relation p[2; 0] { (2n, 2n); }").relation("p")
        with pytest.raises(SchemaError):
            a.union(b)
        with pytest.raises(SchemaError):
            a.difference(b)
        with pytest.raises(SchemaError):
            a.contains(b)

    def test_constraint_arity_mismatch(self):
        from repro.constraints import ConstraintSystem

        a = ConstraintSystem.top(1)
        b = ConstraintSystem.top(2)
        with pytest.raises(ValueError):
            a.conjoin(b)
        with pytest.raises(ValueError):
            a.implies(b)

    def test_dbm_dimension_mismatch(self):
        from repro.constraints.dbm import Dbm

        with pytest.raises(ValueError):
            Dbm.unconstrained(1).conjoin(Dbm.unconstrained(2))
        with pytest.raises(ValueError):
            Dbm.unconstrained(1).difference(Dbm.unconstrained(2))
        with pytest.raises(ValueError):
            Dbm.unconstrained(1).contains(Dbm.unconstrained(2))


class TestOmegaErrors:
    def test_buchi_lasso_needs_loop(self):
        from repro.omega import buchi_eventually

        with pytest.raises(ValueError):
            buchi_eventually().accepts_lasso(("0",), ())

    def test_finite_acceptance_lasso_needs_loop(self):
        from repro.omega.expressiveness import finite_acceptance_eventually

        with pytest.raises(ValueError):
            finite_acceptance_eventually().accepts_lasso((), ())

    def test_alphabet_mismatch(self):
        from repro.omega import BuchiAutomaton, buchi_eventually

        other = BuchiAutomaton({0}, ("a",), {(0, "a"): {0}}, {0}, {0})
        with pytest.raises(ValueError):
            buchi_eventually().union(other)
        with pytest.raises(ValueError):
            buchi_eventually().intersection(other)
