"""Tests for the deductive-language parser and AST."""

import pytest

from repro.core import parse_clause, parse_program
from repro.core.ast import (
    Clause,
    ConstraintAtom,
    DataTerm,
    PredicateAtom,
    Program,
    TemporalTerm,
)
from repro.util.errors import ParseError, SchemaError

EXAMPLE_41 = """
% Example 4.1 of the paper.
problems(t1 + 2, t2 + 2; "database") <- course(t1, t2; "database").
problems(t1 + 48, t2 + 48; X) <- problems(t1, t2; X).
"""


class TestParsing:
    def test_example_41(self):
        program = parse_program(EXAMPLE_41)
        assert len(program) == 2
        first, second = program.clauses
        assert first.head.predicate == "problems"
        assert first.head.temporal_args == (
            TemporalTerm("t1", 2),
            TemporalTerm("t2", 2),
        )
        assert first.head.data_args == (DataTerm.constant("database"),)
        assert second.head.data_args == (DataTerm.variable("X"),)

    def test_fact_without_arrow(self):
        clause = parse_clause("p(5).")
        assert clause.body == ()
        assert clause.head.temporal_args == (TemporalTerm(None, 5),)

    def test_fact_with_arrow(self):
        clause = parse_clause("p(5) <- .")
        assert clause.body == ()

    def test_negative_offsets(self):
        clause = parse_clause("p(t - 3) <- q(t).")
        assert clause.head.temporal_args == (TemporalTerm("t", -3),)

    def test_negative_constant(self):
        clause = parse_clause("p(-7).")
        assert clause.head.temporal_args == (TemporalTerm(None, -7),)

    def test_constraint_atoms(self):
        clause = parse_clause("p(t) <- q(t, u), t < u + 5, u >= 0.")
        constraints = clause.constraint_atoms()
        assert len(constraints) == 2
        assert constraints[0] == ConstraintAtom(
            "<", TemporalTerm("t"), TemporalTerm("u", 5)
        )
        assert constraints[1] == ConstraintAtom(
            ">=", TemporalTerm("u"), TemporalTerm(None, 0)
        )

    def test_data_conventions(self):
        clause = parse_clause('p(t; X, liege, "Brussels", 3) <- q(t; X).')
        data = clause.head.data_args
        assert data[0].is_variable()
        assert data[1] == DataTerm.constant("liege")
        assert data[2] == DataTerm.constant("Brussels")
        assert data[3] == DataTerm.constant(3)

    def test_prolog_arrow(self):
        clause = parse_clause("p(t) :- q(t).")
        assert clause.head.predicate == "p"
        assert clause.predicate_atoms()[0].predicate == "q"

    def test_comments(self):
        program = parse_program("% a comment\np(0). # another\n")
        assert len(program) == 1

    def test_missing_period(self):
        with pytest.raises(ParseError):
            parse_program("p(0) q(1).")

    def test_bad_constraint(self):
        with pytest.raises(ParseError):
            parse_clause("p(t) <- t < .")

    def test_str_roundtrip(self):
        program = parse_program(EXAMPLE_41)
        again = parse_program(str(program))
        assert str(again) == str(program)


class TestProgramStructure:
    def test_predicate_classification(self):
        program = parse_program(EXAMPLE_41)
        assert program.intensional_predicates() == {"problems"}
        assert program.extensional_predicates() == {"course"}

    def test_schemas(self):
        program = parse_program(EXAMPLE_41)
        assert program.schemas() == {"problems": (2, 1), "course": (2, 1)}

    def test_inconsistent_arity(self):
        with pytest.raises(SchemaError):
            parse_program("p(t) <- q(t). p(t, u) <- q(t).")

    def test_unbound_head_data_var(self):
        with pytest.raises(SchemaError):
            parse_program("p(t; X) <- q(t).")

    def test_free_head_temporal_var_allowed(self):
        # Temporal head variables may be unbound: they denote all of Z.
        program = parse_program("p(t, u) <- q(t).")
        assert len(program) == 1

    def test_clauses_for(self):
        program = parse_program(EXAMPLE_41)
        assert len(program.clauses_for("problems")) == 2
        assert program.clauses_for("course") == []


class TestNormalization:
    def test_head_offsets_become_constraints(self):
        from repro.core.transform import normalize_clause

        clause = parse_clause("p(t + 2) <- q(t).")
        normalized = normalize_clause(clause)
        assert normalized.head_vars != ("t",)
        links = [str(c) for c in normalized.constraints]
        assert any("t+2" in link for link in links)

    def test_head_constant(self):
        from repro.core.transform import normalize_clause

        clause = parse_clause("p(5).")
        normalized = normalize_clause(clause)
        assert len(normalized.head_vars) == 1
        assert any("= 5" in str(c) for c in normalized.constraints)

    def test_body_atoms_have_distinct_bare_vars(self):
        from repro.core.transform import normalize_clause

        clause = parse_clause("p(t) <- q(t, t + 1), r(t).")
        normalized = normalize_clause(clause)
        seen = set()
        for atom in normalized.body_atoms:
            for term in atom.temporal_args:
                assert term.offset == 0 and term.var is not None
                assert term.var not in seen
                seen.add(term.var)

    def test_duplicate_head_var(self):
        from repro.core.transform import normalize_clause

        clause = parse_clause("p(t, t) <- q(t).")
        normalized = normalize_clause(clause)
        assert len(set(normalized.head_vars)) == 2

    def test_constant_in_body_atom(self):
        from repro.core.transform import normalize_clause

        clause = parse_clause("p(t) <- q(t, 0).")
        normalized = normalize_clause(clause)
        assert any("= 0" in str(c) for c in normalized.constraints)
