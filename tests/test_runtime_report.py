"""Run reports: the error summary must keep the whole exception chain
— ``__cause__`` preferred, ``__context__`` as the implicit fallback —
so a service-layer wrapper can never hide the root cause."""

import pytest

from repro.runtime.report import MAX_CAUSE_DEPTH, error_summary
from repro.util.errors import BudgetExceededError


def raise_chained():
    try:
        try:
            raise KeyError("root")
        except KeyError as root:
            raise ValueError("middle") from root
    except ValueError:
        raise RuntimeError("outer")


class TestErrorSummary:
    def test_none(self):
        assert error_summary(None) is None

    def test_flat(self):
        summary = error_summary(ValueError("boom"))
        assert summary == {"type": "ValueError", "message": "boom"}

    def test_budget_limit_field(self):
        summary = error_summary(BudgetExceededError("x", limit="max_rounds"))
        assert summary["limit"] == "max_rounds"

    def test_deep_chain_is_fully_recursed(self):
        # Pre-PR regression: only one level of __cause__ survived and
        # __context__ was ignored entirely, so the KeyError root cause
        # vanished from reports.
        try:
            raise_chained()
        except RuntimeError as error:
            summary = error_summary(error)
        assert summary["type"] == "RuntimeError"
        middle = summary["cause"]
        assert middle["type"] == "ValueError"  # implicit __context__
        root = middle["cause"]
        assert root["type"] == "KeyError"  # explicit __cause__
        assert "cause" not in root

    def test_cause_preferred_over_context(self):
        try:
            try:
                raise KeyError("context")
            except KeyError:
                raise ValueError("outer") from OSError("cause")
        except ValueError as error:
            summary = error_summary(error)
        assert summary["cause"]["type"] == "OSError"

    def test_suppressed_context_is_not_reported(self):
        try:
            try:
                raise KeyError("hidden")
            except KeyError:
                raise ValueError("outer") from None
        except ValueError as error:
            summary = error_summary(error)
        assert "cause" not in summary

    def test_depth_cap_marks_truncation(self):
        error = ValueError("level 0")
        for level in range(1, MAX_CAUSE_DEPTH + 4):
            wrapper = ValueError("level %d" % level)
            wrapper.__cause__ = error
            error = wrapper
        summary = error_summary(error)
        depth = 0
        while "cause" in summary and "truncated" not in summary:
            summary = summary["cause"]
            depth += 1
        assert summary.get("truncated") is True
        assert depth == MAX_CAUSE_DEPTH

    def test_cyclic_chain_terminates(self):
        error = ValueError("ouroboros")
        error.__cause__ = error
        summary = error_summary(error)
        depth = 0
        while "cause" in summary:
            summary = summary["cause"]
            depth += 1
        assert depth <= MAX_CAUSE_DEPTH
