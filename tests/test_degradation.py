"""Graceful-degradation guarantees of the pre-existing paths: the
paper's give-up policy (Section 4.3) exposes a usable partial model,
and the error hierarchy keeps every early exit typed."""

import pytest

from repro.core import DeductiveEngine, parse_program
from repro.gdb import parse_database
from repro.util.errors import (
    BudgetExceededError,
    CheckpointError,
    EvaluationAbortedError,
    EvaluationError,
    GiveUpError,
    PartialResultError,
    ReproError,
)

EDB = """
relation course[2; 1] {
  (168n+8, 168n+10; "database") where T2 = T1 + 2;
}
relation seed[1; 0] { (n) where T1 = 0; }
"""

DIVERGING = """
p(t) <- seed(t).
p(t + 5) <- p(t).
"""


def make_engine(**kwargs):
    return DeductiveEngine(
        parse_program(DIVERGING), parse_database(EDB), **kwargs
    )


class TestGiveUp:
    def test_give_up_error_carries_partial_model(self):
        engine = make_engine(patience=3)
        with pytest.raises(GiveUpError) as info:
            engine.run()
        error = info.value
        assert error.partial_model is not None
        # the pre-give-up interpretation holds the facts derived so far:
        # p starts at 0 and re-derives itself shifted by 5
        relation = error.partial_model.relation("p")
        assert relation.contains_point((0,), ())
        assert relation.contains_point((5,), ())
        assert error.stats is not None
        assert error.stats.gave_up
        assert not error.stats.constraint_safe

    def test_partial_mode_returns_model_and_flags_stats(self):
        engine = make_engine(patience=3, on_give_up="partial")
        model = engine.run()
        assert model.stats.gave_up
        assert not model.stats.constraint_safe
        assert model.relation("p").contains_point((0,), ())
        # window query over the partial model works
        assert (0,) in model.extension("p", 0, 3)

    def test_partial_model_matches_partial_mode(self):
        """on_give_up='raise' and on_give_up='partial' expose the same
        interpretation."""
        with pytest.raises(GiveUpError) as info:
            make_engine(patience=3).run()
        raised = info.value.partial_model
        returned = make_engine(patience=3, on_give_up="partial").run()
        keys = lambda rel: sorted(gt.canonical_key() for gt in rel.tuples)
        assert keys(raised.relation("p")) == keys(returned.relation("p"))

    def test_trace_round_cap_per_stratum(self):
        engine = make_engine(patience=50)
        rounds = [number for number, _ in engine.trace(max_rounds=4)]
        assert rounds == [1, 2, 3, 4]

    def test_patience_none_runs_to_max_rounds(self):
        engine = make_engine(patience=None, max_rounds=5, on_give_up="partial")
        model = engine.run()
        assert model.stats.rounds == 5
        assert model.stats.gave_up


class TestStatsTyping:
    def test_to_dict_is_json_safe_and_complete(self):
        import json

        model = DeductiveEngine(
            parse_program(
                "problems(t1 + 2, t2 + 2; X) <- course(t1, t2; X)."
            ),
            parse_database(EDB),
        ).run()
        payload = model.stats.to_dict()
        json.dumps(payload)  # JSON-safe
        assert payload["constraint_safe"] is True
        assert payload["signature_stable_round"] is not None
        assert payload["total_new_tuples"] == sum(
            payload["new_tuples_per_round"]
        )
        assert payload["resumed_from_round"] is None
        assert payload["budget_exceeded"] is False

    def test_optional_fields_start_none(self):
        from repro.core.engine import EvaluationStats

        stats = EvaluationStats()
        assert stats.signature_stable_round is None
        assert stats.free_extension_safe_checked is None
        assert stats.resumed_from_round is None
        assert stats.new_tuples_per_round == []


class TestErrorHierarchy:
    def test_partial_result_family(self):
        for family in (GiveUpError, BudgetExceededError, EvaluationAbortedError):
            assert issubclass(family, PartialResultError)
            assert issubclass(family, EvaluationError)
            assert issubclass(family, ReproError)

    def test_checkpoint_error_is_repro_error(self):
        assert issubclass(CheckpointError, ReproError)
        assert not issubclass(CheckpointError, PartialResultError)

    def test_partial_result_error_fields(self):
        error = BudgetExceededError("boom", limit="max_rounds")
        assert error.partial_model is None
        assert error.stats is None
        assert error.limit == "max_rounds"
